"""Property suite: the vectorized exact backend equals the list backend.

``VecExactBackend`` runs the float backend's strided butterflies on
int64 (or, after promotion, object-dtype) ndarrays -- but it claims
*exactness*: every table, verdict and derived answer must equal the
pure-python ``ExactBackend`` bit for bit, including across the
overflow-promotion ladder (int64 -> object dtype) and for Fractions,
which route to object storage from the start.  The suite drives random
inputs through both backends across all tiers -- raw butterflies,
batched differentials, incremental delta maintenance, sharded
merge-and-evaluate -- plus targeted overflow-boundary cases at
``+/- 2^62`` (the exact point where one butterfly add could leave
int64).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.engine import (
    EXACT,
    VEC_EXACT,
    IncrementalEvalContext,
    ShardedEvalContext,
    VecTable,
    recompute_tables,
)
from repro.engine.backends import backend_for_table
from repro.engine.batch import differential_table

GROUNDS = [GroundSet("ABCDE"[:n]) for n in range(6)]  # |S| = 0..5

BUTTERFLIES = (
    "superset_zeta_inplace",
    "superset_mobius_inplace",
    "subset_zeta_inplace",
    "subset_mobius_inplace",
)

#: One butterfly add can double a magnitude: 2^62 is the first value
#: whose doubling leaves int64, so tables seeded there must promote.
BOUNDARY = 2**62


def vec_equals_list(vec, want) -> bool:
    """Byte-identical: same values AND same python types on read-out."""
    got = list(vec)
    return got == list(want) and all(
        type(g) is type(w) for g, w in zip(got, want)
    )


# ----------------------------------------------------------------------
# raw butterflies
# ----------------------------------------------------------------------
small_ints = st.integers(min_value=-50, max_value=50)
wild_ints = st.one_of(
    small_ints,
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.just(BOUNDARY),
    st.just(-BOUNDARY),
)


@st.composite
def int_tables(draw, values=small_ints):
    n = draw(st.integers(min_value=0, max_value=5))
    return draw(
        st.lists(values, min_size=1 << n, max_size=1 << n)
    )


@settings(max_examples=200)
@given(values=int_tables(values=wild_ints), op=st.sampled_from(BUTTERFLIES))
def test_butterflies_byte_identical(values, op):
    exact = EXACT.copy(values)
    vec = VEC_EXACT.copy(values)
    getattr(EXACT, op)(exact)
    getattr(VEC_EXACT, op)(vec)
    assert vec_equals_list(vec, exact)


@settings(max_examples=100)
@given(values=int_tables(), members=st.lists(
    st.integers(min_value=0, max_value=31), max_size=3,
))
def test_differential_tables_byte_identical(values, members):
    members = tuple(m % len(values) for m in members)
    exact = differential_table(EXACT.copy(values), members, EXACT)
    vec = differential_table(VEC_EXACT.copy(values), members, VEC_EXACT)
    assert vec_equals_list(vec, exact)


@settings(max_examples=100)
@given(
    values=int_tables(values=wild_ints),
    where=st.lists(st.booleans(), min_size=1),
    tol=st.sampled_from([0.0, 1e-9, 0.5, 2.0, float(2**53)]),
)
def test_masked_helpers_agree(values, where, tol):
    where = np.array(
        (where * len(values))[: len(values)], dtype=bool
    )
    exact = EXACT.copy(values)
    vec = VEC_EXACT.copy(values)
    assert VEC_EXACT.any_nonzero_where(vec, where, tol) == (
        EXACT.any_nonzero_where(exact, where, tol)
    )
    assert VEC_EXACT.first_nonzero_where(vec, where, tol) == (
        EXACT.first_nonzero_where(exact, where, tol)
    )
    assert VEC_EXACT.all_nonnegative(vec, tol) == (
        EXACT.all_nonnegative(exact, tol)
    )
    VEC_EXACT.zero_where(vec, where)
    EXACT.zero_where(exact, where)
    assert vec_equals_list(vec, exact)


# ----------------------------------------------------------------------
# incremental + sharded tiers
# ----------------------------------------------------------------------
@st.composite
def instances(draw):
    ground = draw(st.sampled_from(GROUNDS))
    universe = ground.universe_mask
    masks = st.integers(min_value=0, max_value=universe)
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        lhs = draw(masks)
        members = draw(st.lists(masks, min_size=0, max_size=3))
        constraints.append(
            DifferentialConstraint(ground, lhs, SetFamily(ground, members))
        )
    deltas = draw(
        st.lists(
            st.tuples(masks, st.integers(min_value=-3, max_value=3)),
            min_size=0,
            max_size=12,
        )
    )
    return ground, constraints, deltas


@settings(max_examples=200)
@given(data=instances())
def test_incremental_tier_byte_identical(data):
    """Delta-maintained tables, statuses and the set-function protocol
    agree between the vectorized and list exact backends -- including
    the empty ground set and all-zero densities (empty delta lists and
    deltas that cancel)."""
    ground, constraints, deltas = data
    vec = IncrementalEvalContext(
        ground, constraints=constraints, backend="exact-vec"
    )
    ref = IncrementalEvalContext(
        ground, constraints=constraints, backend="exact"
    )
    # materialize live tables first so they are delta-maintained
    vec.support_table(), ref.support_table()
    for c in constraints:
        vec.differential_table(c.family)
        ref.differential_table(c.family)
    for mask, delta in deltas:
        assert vec.apply_delta(mask, delta) == ref.apply_delta(mask, delta)

    assert vec_equals_list(vec.density_table(), ref.density_table())
    assert vec_equals_list(vec.support_table(), ref.support_table())
    for c in constraints:
        assert vec_equals_list(
            vec.differential_table(c.family), ref.differential_table(c.family)
        )
    assert list(vec.density_items()) == list(ref.density_items())
    assert vec.zero_set() == ref.zero_set()
    assert vec.violated_constraints() == ref.violated_constraints()
    assert vec.theory_version == ref.theory_version
    assert vec.zero_version == ref.zero_version
    for mask in range(1 << ground.size):
        assert vec.value(mask) == ref.value(mask)

    # and both equal the from-scratch batched oracle on their backend
    families = [c.family.members for c in constraints]
    density, support, diffs = recompute_tables(
        ground.size, ref.density_items(), families, VEC_EXACT
    )
    assert vec_equals_list(density, ref.density_table())
    assert vec_equals_list(support, ref.support_table())
    for c, want in zip(constraints, diffs):
        assert vec_equals_list(want, ref.differential_table(c.family))


@settings(max_examples=100, deadline=None)
@given(data=instances(), shards=st.sampled_from([1, 2, 3]))
def test_sharded_tier_byte_identical(data, shards):
    ground, constraints, deltas = data
    vec = ShardedEvalContext(
        ground, constraints=constraints, shards=shards, backend="exact-vec"
    )
    ref = ShardedEvalContext(
        ground, constraints=constraints, shards=shards, backend="exact"
    )
    for mask, delta in deltas:
        assert vec.apply_delta(mask, delta) == ref.apply_delta(mask, delta)
    assert vec_equals_list(vec.merged_density_table(), ref.merged_density_table())
    assert vec_equals_list(vec.merged_support_table(), ref.merged_support_table())
    for c in constraints:
        assert vec_equals_list(
            vec.merged_differential_table(c.family),
            ref.merged_differential_table(c.family),
        )
    probes = list(range(min(4, 1 << ground.size)))
    got = vec.evaluate(probes=probes, return_tables=True)
    want = ref.evaluate(probes=probes, return_tables=True)
    assert got.violated == want.violated
    assert got.support == want.support
    assert vec_equals_list(got.density_table, want.density_table)
    assert vec_equals_list(got.support_table, want.support_table)
    vec.close(), ref.close()


# ----------------------------------------------------------------------
# the promotion ladder
# ----------------------------------------------------------------------
class TestOverflowPromotion:
    def test_boundary_values_promote_mid_transform(self):
        """+/- 2^62 entries force int64 -> object during a butterfly;
        the results still equal the list backend exactly."""
        for seed in ([BOUNDARY, BOUNDARY, 0, -BOUNDARY],
                     [-BOUNDARY, -BOUNDARY, -BOUNDARY, -BOUNDARY],
                     [2**63 - 1, 1, 0, 0]):
            for op in BUTTERFLIES:
                exact = EXACT.copy(seed)
                vec = VEC_EXACT.copy(seed)
                assert not vec.is_object  # fits int64 going in...
                getattr(EXACT, op)(exact)
                getattr(VEC_EXACT, op)(vec)
                assert vec_equals_list(vec, exact)

    def test_int64_stays_int64_below_the_boundary(self):
        vec = VEC_EXACT.copy([BOUNDARY - 1, 0, 0, 0])
        VEC_EXACT.superset_zeta_inplace(vec)
        assert not vec.is_object  # headroom check did not fire
        assert vec[0] == BOUNDARY - 1

    def test_fractions_route_to_object_from_the_start(self):
        seed = [Fraction(1, 3), Fraction(-2, 7), 5, 0]
        vec = VEC_EXACT.copy(seed)
        assert vec.is_object
        exact = EXACT.copy(seed)
        VEC_EXACT.superset_zeta_inplace(vec)
        EXACT.superset_zeta_inplace(exact)
        assert vec_equals_list(vec, exact)
        assert isinstance(vec[0], Fraction)

    def test_setitem_promotes_on_overflow_and_fractions(self):
        vec = VEC_EXACT.zeros(4)
        vec[1] = 2**63  # does not fit int64
        assert vec.is_object and vec[1] == 2**63 and vec[0] == 0
        vec2 = VEC_EXACT.zeros(4)
        vec2[2] = Fraction(1, 2)
        assert vec2.is_object and vec2[2] == Fraction(1, 2)

    def test_delta_add_promotes_exactly_at_the_bound(self):
        vec = VEC_EXACT.copy([2**63 - 2, 0, 0, 0])
        VEC_EXACT.add_on_subsets_inplace(vec, 0b01, 1)
        assert not vec.is_object and vec[0] == 2**63 - 1
        VEC_EXACT.add_on_subsets_inplace(vec, 0b01, 1)
        assert vec.is_object and vec[0] == 2**63 and vec[1] == 2
        assert vec[2] == 0  # untouched positions stay untouched

    def test_shard_merge_promotes_on_overflow(self):
        big = VEC_EXACT.copy([3 * 2**61, 1])
        merged = VEC_EXACT.sum_tables([big, VEC_EXACT.copy(big)])
        assert merged.is_object
        assert list(merged) == [3 * 2**62, 2]
        small = VEC_EXACT.sum_tables(
            [VEC_EXACT.copy([1, 2]), VEC_EXACT.copy([3, 4])]
        )
        assert not small.is_object and list(small) == [4, 6]

    def test_incremental_context_survives_promotion(self):
        ground = GroundSet("AB")
        vec = IncrementalEvalContext(ground, backend="exact-vec")
        ref = IncrementalEvalContext(ground, backend="exact")
        vec.support_table(), ref.support_table()
        for mask, delta in ((0b11, BOUNDARY), (0b01, BOUNDARY),
                            (0b11, BOUNDARY), (0b01, -1)):
            assert vec.apply_delta(mask, delta) == ref.apply_delta(mask, delta)
        assert vec_equals_list(vec.density_table(), ref.density_table())
        assert vec_equals_list(vec.support_table(), ref.support_table())
        assert list(vec.density_items()) == list(ref.density_items())

    def test_fraction_deltas_in_a_live_context(self):
        ground = GroundSet("ABC")
        vec = IncrementalEvalContext(ground, backend="exact-vec")
        ref = IncrementalEvalContext(ground, backend="exact")
        vec.support_table(), ref.support_table()
        for mask, delta in ((0b101, Fraction(1, 3)), (0b001, 2),
                            (0b101, Fraction(-1, 3))):
            assert vec.apply_delta(mask, delta) == ref.apply_delta(mask, delta)
        assert vec_equals_list(vec.density_table(), ref.density_table())
        assert vec_equals_list(vec.support_table(), ref.support_table())


class TestVecTable:
    def test_reads_hand_back_python_ints(self):
        vec = VEC_EXACT.copy([1, 2, 3, 4])
        assert type(vec[0]) is int
        assert all(type(v) is int for v in vec)
        assert vec.tolist() == [1, 2, 3, 4]

    def test_backend_for_table_roundtrip(self):
        assert backend_for_table(VEC_EXACT.zeros(2)) is VEC_EXACT

    def test_pickles_across_process_boundaries(self):
        import pickle

        for vec in (VEC_EXACT.copy([1, -2]),
                    VEC_EXACT.copy([Fraction(1, 3), 2**70])):
            clone = pickle.loads(pickle.dumps(vec))
            assert isinstance(clone, VecTable)
            assert list(clone) == list(vec)
            assert clone.is_object == vec.is_object

    def test_float_reads_go_to_object_not_truncated(self):
        # floats are not exact values, but storage must never silently
        # truncate them to ints (mirrors what a python list would hold)
        vec = VEC_EXACT.copy([1.5, 2])
        assert vec.is_object and vec[0] == 1.5
