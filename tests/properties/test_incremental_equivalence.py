"""Property suite: incremental tables exactly equal full recomputation.

Random delta sequences applied to random instances must leave the
incremental engine's density / support / differential tables *exactly*
equal to a from-scratch batched recompute, and its per-delta violation
tracking exactly equal to scalar satisfaction checks -- on both the
exact and the float backend.  Deltas are integer-valued, so float64
arithmetic is exact and equality is bit-for-bit on both backends (any
divergence is a logic bug, not roundoff).

Ground sets deliberately include the degenerate corners: the empty
ground set, singleton ``S``, and all-zero densities (delta sequences
that cancel).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
    differential_apply_delta,
    differential_function,
    differential_function_by_definition,
)
from repro.engine import IncrementalEvalContext, StreamSession, recompute_tables
from repro.engine.backends import backend_by_name

GROUNDS = [GroundSet("ABCDE"[:n]) for n in range(6)]  # |S| = 0..5

BACKENDS = ["exact", "float"]


def tables_equal(a, b) -> bool:
    """Exact equality across list/ndarray storage."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a, dtype=np.float64),
                              np.asarray(b, dtype=np.float64))
    return list(a) == list(b)


@st.composite
def instances(draw, min_size: int = 0):
    """A ground set, a constraint list, and an integer delta sequence."""
    ground = draw(st.sampled_from(GROUNDS[min_size:]))
    universe = ground.universe_mask
    masks = st.integers(min_value=0, max_value=universe)
    n_constraints = draw(st.integers(min_value=0, max_value=3))
    constraints = []
    for _ in range(n_constraints):
        lhs = draw(masks)
        members = draw(st.lists(masks, min_size=0, max_size=3))
        constraints.append(
            DifferentialConstraint(ground, lhs, SetFamily(ground, members))
        )
    deltas = draw(
        st.lists(
            st.tuples(masks, st.integers(min_value=-3, max_value=3)),
            min_size=0,
            max_size=10,
        )
    )
    return ground, constraints, deltas


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=250)
@given(data=instances())
def test_tables_match_full_recompute(backend_name, data):
    """Incremental density/support/differential == batched recompute."""
    ground, constraints, deltas = data
    backend = backend_by_name(backend_name)
    ctx = IncrementalEvalContext(
        ground, constraints=constraints, backend=backend
    )
    # materialize every table *before* the deltas: they must be
    # delta-maintained, not lazily recomputed at comparison time
    ctx.support_table()
    for c in constraints:
        ctx.differential_table(c.family)
    for mask, delta in deltas:
        ctx.apply_delta(mask, delta)

    families = [c.family.members for c in constraints]
    density, support, diffs = recompute_tables(
        ground.size, ctx.density_items(), families, backend
    )
    assert tables_equal(ctx.density_table(), density)
    assert tables_equal(ctx.support_table(), support)
    for c, want in zip(constraints, diffs):
        assert tables_equal(ctx.differential_table(c.family), want)


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=150)
@given(data=instances())
def test_violations_match_scalar_paths(backend_name, data):
    """Per-delta violation tracking == scalar satisfied_by, dense and
    sparse, after every single delta."""
    ground, constraints, deltas = data
    ctx = IncrementalEvalContext(
        ground, constraints=constraints, backend=backend_name
    )
    for mask, delta in deltas:
        ctx.apply_delta(mask, delta)
        density = dict(ctx.density_items())
        dense = SetFunction.from_density(
            ground, density, exact=(backend_name == "exact")
        )
        sparse = SparseDensityFunction(ground, density)
        for c in constraints:
            want = c.satisfied_by(dense)
            assert c.satisfied_by(sparse) == want
            assert ctx.is_violated(c) == (not want)
    # the whole-set view agrees too
    cset = ConstraintSet(ground, constraints)
    dense = SetFunction.from_density(
        ground, dict(ctx.density_items()), exact=(backend_name == "exact")
    )
    assert cset.satisfied_by(dense) == (not ctx.violated_constraints())


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=100)
@given(data=instances())
def test_stream_reports_are_consistent(backend_name, data):
    """StreamReport flips reconcile: replaying the net flips from a
    satisfied-set snapshot reproduces the final violated set, and every
    reported flip is a real status change."""
    ground, constraints, deltas = data
    session = StreamSession(ground, constraints, backend=backend_name)
    violated = set()
    for mask, delta in deltas:
        before = set(session.violated_constraints())
        report = session.apply([(mask, delta)])
        after = set(session.violated_constraints())
        assert set(report.newly_violated) == after - before
        assert set(report.restored) == before - after
        assert set(report.violated) == after
        violated = after
    assert violated == set(session.violated_constraints())


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=100)
@given(data=instances(min_size=1))
def test_setfunction_delta_hook_matches_rebuild(backend_name, data):
    """SetFunction.apply_density_delta == rebuilding from the patched
    density; differential_apply_delta == re-running the batched pass."""
    ground, constraints, deltas = data
    exact = backend_name == "exact"
    f = SetFunction.zeros(ground, exact=exact)
    density = {}
    family = (
        constraints[0].family
        if constraints
        else SetFamily(ground, [1])  # {A}
    )
    diff = f.differential(family)
    for mask, delta in deltas:
        f.apply_density_delta(mask, delta)
        differential_apply_delta(diff._values, family, mask, delta)
        density[mask] = density.get(mask, 0) + delta
    rebuilt = SetFunction.from_density(ground, density, exact=exact)
    assert tables_equal(f.table(), rebuilt.table())
    assert tables_equal(f.density().table(), rebuilt.density().table())
    want_diff = differential_function(rebuilt, family)
    assert tables_equal(diff._values, want_diff.table())


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=60)
@given(data=instances())
def test_engine_matches_scalar_definition(backend_name, data):
    """The maintained differential table also equals the scalar
    Definition 2.1 loop (engine vs scalar on arbitrary, possibly
    degenerate, instances)."""
    ground, constraints, deltas = data
    ctx = IncrementalEvalContext(
        ground, constraints=constraints, backend=backend_name
    )
    for c in constraints:
        ctx.differential_table(c.family)
    for mask, delta in deltas:
        ctx.apply_delta(mask, delta)
    f = SetFunction.from_density(
        ground, dict(ctx.density_items()), exact=(backend_name == "exact")
    )
    for c in constraints:
        want = differential_function_by_definition(f, c.family)
        assert tables_equal(ctx.differential_table(c.family), want.table())
