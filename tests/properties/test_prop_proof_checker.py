"""Metamorphic tests: the proof checker rejects corrupted derivations.

Positive cases (valid proofs check out) are everywhere in the suite;
these tests establish the converse discipline -- take a genuine proof,
corrupt one facet (conclusion, premise wiring, rule name, parameters),
and require the independent checker to reject it.  Without these, a
vacuously-accepting checker would pass the whole suite.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    check_proof,
    derive,
)
from repro.core import rules as R
from repro.core.proofs import Proof
from repro.errors import InvalidProofError, NotImpliedError
from repro.instances import random_implied_pair

GROUND = GroundSet("ABCD")
UNIVERSE = GROUND.universe_mask

masks = st.integers(0, UNIVERSE)
nonempty_masks = st.integers(1, UNIVERSE)
seeds = st.integers(0, 10_000)

#: these tests legitimately discard many draws (not every random proof
#: has a corruptible step of the wanted shape)
_HEAVY_FILTERS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)


def _proof_for_seed(seed):
    import random

    rng = random.Random(seed)
    cset, target = random_implied_pair(rng, GROUND, max_members=2)
    proof = derive(cset, target, check=False)
    return cset, proof


def _rebuild_without_validation(node, premises, conclusion=None, rule=None, params=None):
    """Clone a step, bypassing builder validation via __new__."""
    clone = Proof.__new__(Proof)
    clone._conclusion = conclusion if conclusion is not None else node.conclusion
    clone._rule = rule if rule is not None else node.rule
    clone._premises = premises
    clone._params = params if params is not None else node.params
    return clone


def _clone_with_corruption(proof, corrupt_step, corruptor):
    """Rebuild the DAG, applying ``corruptor`` to the chosen step."""
    memo = {}
    order = list(proof.iter_nodes())
    for index, node in enumerate(order):
        premises = tuple(memo[id(p)] for p in node.premises)
        if index == corrupt_step:
            memo[id(node)] = corruptor(node, premises)
        else:
            memo[id(node)] = _rebuild_without_validation(node, premises)
    return memo[id(order[-1])]


@given(seeds, masks)
@_HEAVY_FILTERS
def test_corrupted_final_conclusion_rejected(seed, new_lhs):
    cset, proof = _proof_for_seed(seed)
    final = proof.conclusion
    assume(new_lhs != final.lhs)
    forged = DifferentialConstraint(GROUND, new_lhs, final.family)
    corrupted = _clone_with_corruption(
        proof,
        proof.size() - 1,
        lambda node, prem: _rebuild_without_validation(
            node, prem, conclusion=forged
        ),
    )
    # axiom/triviality leaves may accidentally stay valid only if the
    # forged conclusion is itself an axiom or trivial -- exclude those
    assume(not (corrupted.rule == "axiom" and forged in cset))
    assume(not (corrupted.rule == "triviality" and forged.is_trivial))
    with pytest.raises(InvalidProofError):
        check_proof(corrupted, cset.constraints)


@given(seeds)
@_HEAVY_FILTERS
def test_foreign_axiom_rejected(seed):
    cset, proof = _proof_for_seed(seed)
    foreign = DifferentialConstraint(
        GROUND, UNIVERSE, SetFamily(GROUND, [])
    )
    assume(foreign not in cset)
    axioms = [
        i
        for i, node in enumerate(proof.iter_nodes())
        if node.rule == R.AXIOM
    ]
    assume(axioms)
    corrupted = _clone_with_corruption(
        proof,
        axioms[0],
        lambda node, prem: _rebuild_without_validation(
            node, prem, conclusion=foreign
        ),
    )
    with pytest.raises(InvalidProofError):
        check_proof(corrupted, cset.constraints)


@given(seeds)
@_HEAVY_FILTERS
def test_renamed_rule_rejected(seed):
    cset, proof = _proof_for_seed(seed)
    order = list(proof.iter_nodes())
    internal = [
        i
        for i, node in enumerate(order)
        if node.rule == R.ADDITION
        # exclude no-op coincidences where the renamed step would still
        # satisfy the augmentation schema (z subseteq lhs and z in family)
        and node.conclusion
        != DifferentialConstraint(
            GROUND,
            node.premises[0].conclusion.lhs | node.params[0],
            node.premises[0].conclusion.family,
        )
    ]
    assume(internal)
    corrupted = _clone_with_corruption(
        proof,
        internal[0],
        lambda node, prem: _rebuild_without_validation(
            node, prem, rule=R.AUGMENTATION
        ),
    )
    with pytest.raises(InvalidProofError):
        check_proof(corrupted, cset.constraints)


@given(seeds, nonempty_masks)
@_HEAVY_FILTERS
def test_tampered_parameters_rejected(seed, new_param):
    cset, proof = _proof_for_seed(seed)
    order = list(proof.iter_nodes())
    candidates = [
        i
        for i, node in enumerate(order)
        if node.rule in (R.ADDITION, R.AUGMENTATION)
        and node.params
        and node.params[0] != new_param
        # swapping the parameter must actually change the conclusion
        and not (
            node.rule == R.ADDITION
            and node.premises[0].conclusion.family.add(new_param)
            == node.conclusion.family
        )
        and not (
            node.rule == R.AUGMENTATION
            and node.premises[0].conclusion.lhs | new_param
            == node.conclusion.lhs
        )
    ]
    assume(candidates)
    corrupted = _clone_with_corruption(
        proof,
        candidates[0],
        lambda node, prem: _rebuild_without_validation(
            node, prem, params=(new_param,)
        ),
    )
    with pytest.raises(InvalidProofError):
        check_proof(corrupted, cset.constraints)
