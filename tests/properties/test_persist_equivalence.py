"""Property suite: crash recovery reproduces the live state *exactly*.

The recovery invariant the durability layer promises (and the issue's
acceptance criterion): for a random delta stream, on either backend,
sharded or not, crashing at **any record boundary** -- including a torn
final record -- and running ``recover()`` yields density, support and
differential tables exactly equal to an uninterrupted live context
that committed the same prefix.  Deltas are integer-valued so float64
arithmetic is exact regardless of addition order (the same convention
as the shard-equivalence suite), making "exactly equal" a bit-for-bit
claim on both backends.

Crash simulation is byte-level: the WAL is truncated at a drawn record
boundary, or mid-record to fabricate a torn tail, before reopening.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import ConstraintSet, GroundSet
from repro.engine import DurableStore, StreamSession
from repro.engine.persist import _HEADER

BACKENDS = ["exact", "float"]

SHARD_COUNTS = [1, 3]

#: Constraint texts valid over every tested ground set (|S| >= 2).
THEORY = ("A -> B", "B -> A", "AB -> A, B")


def make_theory(ground: GroundSet) -> ConstraintSet:
    return ConstraintSet.of(ground, *THEORY)


@st.composite
def delta_streams(draw):
    """``(ground, transactions)``: a random committed delta stream."""
    n = draw(st.integers(min_value=2, max_value=4))
    ground = GroundSet("ABCD"[:n])
    masks = st.integers(min_value=0, max_value=(1 << n) - 1)
    amounts = st.integers(min_value=-3, max_value=3).filter(bool)
    transactions = draw(
        st.lists(
            st.lists(st.tuples(masks, amounts), min_size=1, max_size=3),
            min_size=1,
            max_size=7,
        )
    )
    return ground, transactions


def truncate_wal_to(data_dir: str, keep_records: int, extra_bytes: int) -> None:
    """Cut ``wal.log`` after ``keep_records`` whole records, optionally
    leaving ``extra_bytes`` of the next record behind (a torn tail)."""
    path = os.path.join(data_dir, "wal.log")
    with open(path, "rb") as fh:
        blob = fh.read()
    offset = 0
    for _ in range(keep_records):
        _, length, _ = _HEADER.unpack_from(blob, offset)
        offset += _HEADER.size + length
    if extra_bytes:
        remaining = len(blob) - offset
        offset += min(extra_bytes, max(0, remaining - 1))
    with open(path, "rb+") as fh:
        fh.truncate(offset)


def assert_states_equal(recovered: StreamSession, oracle: StreamSession,
                        cset: ConstraintSet) -> None:
    rctx, octx = recovered.context, oracle.context
    assert recovered.transactions == oracle.transactions
    assert list(rctx.density_table()) == list(octx.density_table())
    assert list(rctx.support_table()) == list(octx.support_table())
    for constraint in cset.constraints:
        assert list(rctx.differential_table(constraint.family)) == list(
            octx.differential_table(constraint.family)
        )
    assert rctx.zero_set() == octx.zero_set()
    assert rctx.support_size() == octx.support_size()
    assert recovered.violated_constraints() == oracle.violated_constraints()


class TestCrashRecoveryEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @given(data=st.data())
    @settings(max_examples=40)
    def test_recover_at_any_record_boundary(self, backend, shards, data):
        ground, transactions = data.draw(delta_streams())
        cset = make_theory(ground)
        snapshot_every = data.draw(st.sampled_from([None, 2]))
        with tempfile.TemporaryDirectory() as tmp:
            data_dir = os.path.join(tmp, "data")
            live = StreamSession(
                ground,
                constraints=cset.constraints,
                backend=backend,
                shards=shards,
                durable=data_dir,
                snapshot_every=snapshot_every,
                fsync="never",
            )
            for deltas in transactions:
                live.apply(deltas)
            live.close()

            # the WAL holds records after the newest snapshot; a crash
            # can land on any boundary from there to the end
            floor = DurableStore(data_dir).recover().snapshot["tx"]
            crash_tx = data.draw(
                st.integers(min_value=floor, max_value=len(transactions)),
                label="crash_tx",
            )
            torn = (
                data.draw(st.booleans(), label="torn")
                and crash_tx < len(transactions)
            )
            truncate_wal_to(
                data_dir,
                keep_records=crash_tx - floor,
                extra_bytes=data.draw(
                    st.integers(min_value=1, max_value=24), label="torn_bytes"
                )
                if torn
                else 0,
            )

            recovered = StreamSession(
                ground,
                constraints=cset.constraints,
                backend=backend,
                shards=shards,
                durable=data_dir,
            )
            oracle = StreamSession(
                ground, constraints=cset.constraints, backend=backend
            )
            for deltas in transactions[:crash_tx]:
                oracle.apply(deltas)
            try:
                assert_states_equal(recovered, oracle, cset)
                # sharded recovery also reproduces the merged-table
                # decomposition, not just the inherited live tables
                if shards > 1:
                    assert list(recovered.context.merged_density_table()) == \
                        list(recovered.context.density_table())
            finally:
                recovered.close()
                oracle.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(data=st.data())
    @settings(max_examples=25)
    def test_recovered_session_streams_on_equivalently(self, backend, data):
        """Recovery is not a dead end: continuing the stream after a
        crash matches never having crashed at all."""
        ground, transactions = data.draw(delta_streams())
        cut = data.draw(
            st.integers(min_value=0, max_value=len(transactions)),
            label="cut",
        )
        cset = make_theory(ground)
        with tempfile.TemporaryDirectory() as tmp:
            data_dir = os.path.join(tmp, "data")
            first = StreamSession(
                ground,
                constraints=cset.constraints,
                backend=backend,
                durable=data_dir,
                fsync="never",
            )
            for deltas in transactions[:cut]:
                first.apply(deltas)
            first.close()
            resumed = StreamSession(
                ground,
                constraints=cset.constraints,
                backend=backend,
                durable=data_dir,
            )
            for deltas in transactions[cut:]:
                resumed.apply(deltas)
            oracle = StreamSession(
                ground, constraints=cset.constraints, backend=backend
            )
            for deltas in transactions:
                oracle.apply(deltas)
            try:
                assert_states_equal(resumed, oracle, cset)
            finally:
                resumed.close()
                oracle.close()
