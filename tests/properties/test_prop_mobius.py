"""Property-based tests (hypothesis) for Remark 2.3's Moebius machinery."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import GroundSet, SetFunction
from repro.core import transforms as tr

GROUND = GroundSet("ABCD")
SIZE = 1 << len(GROUND)

int_tables = st.lists(
    st.integers(min_value=-50, max_value=50), min_size=SIZE, max_size=SIZE
)
float_tables = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=SIZE,
    max_size=SIZE,
)


@given(int_tables)
def test_mobius_zeta_roundtrip_exact(values):
    """Equation (4) then (5) recovers the function exactly (int path)."""
    table = list(values)
    tr.superset_mobius_inplace(table)
    tr.superset_zeta_inplace(table)
    assert table == values


@given(int_tables)
def test_zeta_mobius_roundtrip_exact(values):
    table = list(values)
    tr.superset_zeta_inplace(table)
    tr.superset_mobius_inplace(table)
    assert table == values


@given(int_tables)
def test_fast_matches_naive(values):
    assert tr.density_table(list(values)) == tr.naive_density_table(values)


@given(int_tables)
def test_density_uniqueness(values):
    """The density is the unique d satisfying equation (5)."""
    f = SetFunction(GROUND, values, exact=True)
    d = f.density()
    rebuilt = SetFunction.from_density(
        GROUND,
        {mask: d.value(mask) for mask in GROUND.all_masks()},
        exact=True,
    )
    for mask in GROUND.all_masks():
        assert rebuilt.value(mask) == f.value(mask)


@given(int_tables, int_tables)
def test_density_is_linear(a_values, b_values):
    """d_{f+g} = d_f + d_g (the transform is linear)."""
    f = SetFunction(GROUND, a_values, exact=True)
    g = SetFunction(GROUND, b_values, exact=True)
    lhs = (f + g).density()
    rhs = f.density() + g.density()
    for mask in GROUND.all_masks():
        assert lhs.value(mask) == rhs.value(mask)


@given(float_tables)
@settings(max_examples=50)
def test_float_path_close_to_exact(values):
    fast = tr.density_table(
        __import__("numpy").asarray(values, dtype=float)
    )
    naive = tr.naive_density_table(values)
    for a, b in zip(fast, naive):
        assert abs(a - b) < 1e-6


@given(st.dictionaries(st.integers(0, SIZE - 1), st.integers(-9, 9), max_size=8))
def test_from_density_places_density(density):
    f = SetFunction.from_density(GROUND, dict(density), exact=True)
    d = f.density()
    for mask in GROUND.all_masks():
        assert d.value(mask) == density.get(mask, 0)
