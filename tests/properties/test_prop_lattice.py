"""Property-based tests for witness sets and lattice decompositions."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    GroundSet,
    SetFamily,
    SetFunction,
    differential_value,
    differential_via_density,
    in_lattice,
    iter_lattice,
    iter_lattice_by_witnesses,
    lattice,
    minimal_witnesses,
    witnesses,
)
from repro.core import subsets as sb

GROUND = GroundSet("ABCD")
UNIVERSE = GROUND.universe_mask

masks = st.integers(min_value=0, max_value=UNIVERSE)
nonempty_masks = st.integers(min_value=1, max_value=UNIVERSE)
families = st.lists(nonempty_masks, max_size=4).map(
    lambda ms: SetFamily(GROUND, ms)
)
families_with_empty = st.lists(masks, max_size=4).map(
    lambda ms: SetFamily(GROUND, ms)
)


@given(families_with_empty, masks)
def test_closed_form_equals_witness_form(family, lhs):
    """Definition 2.6 == the Prop 2.9 closed form."""
    assert set(iter_lattice(lhs, family, GROUND)) == set(
        iter_lattice_by_witnesses(lhs, family, GROUND)
    )


@given(families)
def test_minimal_witnesses_generate_all(family):
    mins = minimal_witnesses(family)
    union = family.union_support()
    regenerated = set()
    for m in mins:
        regenerated.update(sb.iter_supersets(m, union))
    assert regenerated == set(witnesses(family))


@given(families_with_empty, masks, masks)
def test_proposition_2_8(family, lhs, z):
    """L(X, Y) = L(X, Y + {Z}) union L(X + Z, Y)."""
    whole = set(lattice(lhs, family, GROUND))
    with_z = set(lattice(lhs, family.add(z), GROUND))
    lifted = set(lattice(lhs | z, family, GROUND))
    assert whole == with_z | lifted


@given(
    families_with_empty,
    masks,
    st.lists(st.integers(-20, 20), min_size=16, max_size=16),
)
def test_proposition_2_9(family, lhs, values):
    """D^Y_f(X) equals the density sum over L(X, Y)."""
    f = SetFunction(GROUND, values, exact=True)
    direct = differential_value(f, family, lhs)
    via = differential_via_density(f, family, lhs)
    assert direct == via


@given(families_with_empty, masks)
def test_lattice_membership_consistent(family, lhs):
    members = set(iter_lattice(lhs, family, GROUND))
    for u in GROUND.all_masks():
        assert in_lattice(lhs, family, u) == (u in members)


@given(families_with_empty, masks)
def test_lattice_confined_above_lhs(family, lhs):
    for u in iter_lattice(lhs, family, GROUND):
        assert sb.is_subset(lhs, u)


@given(families, masks)
def test_minimal_members_preserve_lattice(family, lhs):
    assert lattice(lhs, family, GROUND) == lattice(
        lhs, family.minimal_members(), GROUND
    )
