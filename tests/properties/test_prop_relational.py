"""Property-based tests for the relational substrate (Section 7)."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.relational import (
    BooleanDependency,
    Distribution,
    FunctionalDependency,
    Relation,
    implies_fd_classic,
    simpson_density_function_pairsum,
    simpson_function,
    simpson_satisfies,
)

GROUND = GroundSet("ABC")
UNIVERSE = GROUND.universe_mask

rows = st.tuples(
    st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)
)
relations = st.lists(rows, min_size=1, max_size=6).map(
    lambda rs: Relation(GROUND, rs)
)
masks = st.integers(0, UNIVERSE)
nonempty_masks = st.integers(1, UNIVERSE)


@given(relations)
@settings(max_examples=60, deadline=None)
def test_proposition_72(relation):
    """Pairwise density == Moebius density of the Simpson function."""
    dist = Distribution.uniform(relation)
    f = simpson_function(dist)
    pairsum = simpson_density_function_pairsum(dist)
    assert f.density().allclose(pairsum, 1e-9)


@given(relations)
@settings(max_examples=60, deadline=None)
def test_simpson_is_frequency_function(relation):
    dist = Distribution.uniform(relation)
    f = simpson_function(dist)
    assert f.is_nonnegative_density(1e-9)
    assert abs(f.value(0) - 1.0) < 1e-9


@given(relations, masks, st.lists(nonempty_masks, max_size=2))
@settings(max_examples=100, deadline=None)
def test_proposition_73(relation, lhs, members):
    """simpson satisfies X -> Y iff r satisfies X =>bool Y."""
    dist = Distribution.uniform(relation)
    family = SetFamily(GROUND, members)
    c = DifferentialConstraint(GROUND, lhs, family)
    bd = BooleanDependency(GROUND, lhs, family)
    assert simpson_satisfies(dist, c) == bd.satisfied_by(relation)


@given(relations, masks, masks)
@settings(max_examples=100, deadline=None)
def test_fd_is_boolean_special_case(relation, lhs, rhs):
    fd = FunctionalDependency(GROUND, lhs, rhs)
    bd = BooleanDependency(GROUND, lhs, SetFamily(GROUND, [rhs]))
    assert fd.satisfied_by(relation) == bd.satisfied_by(relation)


@given(
    st.lists(st.tuples(masks, masks), min_size=1, max_size=4),
    st.tuples(masks, masks),
)
@settings(max_examples=100, deadline=None)
def test_fd_fragment_equivalence(fd_pairs, target_pair):
    """FD closure implication == singleton-family lattice implication."""
    from repro.core import ConstraintSet, implies_lattice

    fds = [FunctionalDependency(GROUND, a, b) for a, b in fd_pairs]
    target = FunctionalDependency(GROUND, *target_pair)
    cset = ConstraintSet(GROUND, [fd.to_differential() for fd in fds])
    assert implies_fd_classic(fds, target) == implies_lattice(
        cset, target.to_differential()
    )


@given(relations, masks)
@settings(max_examples=60, deadline=None)
def test_simpson_monotone(relation, x):
    """Adding attributes refines groups: simpson weakly decreases."""
    import repro.core.subsets as sb

    dist = Distribution.uniform(relation)
    f = simpson_function(dist)
    for sup in sb.iter_supersets(x, UNIVERSE):
        assert f.value(sup) <= f.value(x) + 1e-9
