"""Property suite: sharded tables exactly equal unsharded tables.

Mask-routed sharding gives the per-shard densities disjoint supports,
so density/support/differential tables must merge to the unsharded
tables *exactly* -- bit for bit on the exact backend, and bit for bit
on the float backend too for integer-valued deltas (float64 addition of
small integers is exact regardless of order).  The suite drives random
delta sequences through sharded and unsharded contexts across shard
counts ``K in {1, 2, 3, 7}``, default and deliberately uneven custom
routes (including all-rows-on-one-shard, which leaves the other shards
empty), and asserts exact table equality plus agreement of the derived
machinery: parallel fan-out verdicts, violation tracking, and server
answers vs the direct decider.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    decide,
)
from repro.engine import (
    ConstraintServer,
    IncrementalEvalContext,
    ShardPlan,
    ShardedEvalContext,
    recompute_tables,
    sum_tables,
)
from repro.engine.backends import backend_by_name

GROUNDS = [GroundSet("ABCDE"[:n]) for n in range(6)]  # |S| = 0..5

BACKENDS = ["exact", "float"]

SHARD_COUNTS = [1, 2, 3, 7]

#: Route makers: shards -> route fn (None = the default hash).  The
#: named alternatives produce deliberately uneven partitions: ``lopsided``
#: routes most masks to shard 0, ``all-on-last`` leaves every other
#: shard empty.
ROUTES = {
    "default": lambda shards: None,
    "modulo": lambda shards: (lambda mask: mask % shards),
    "lopsided": lambda shards: (
        lambda mask: (mask % shards) if mask % 5 == 0 else 0
    ),
    "all-on-last": lambda shards: (lambda mask: shards - 1),
}


def tables_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(
            np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
        )
    return list(a) == list(b)


@st.composite
def instances(draw):
    """Ground set, constraints, integer delta sequence, shard plan."""
    ground = draw(st.sampled_from(GROUNDS))
    universe = ground.universe_mask
    masks = st.integers(min_value=0, max_value=universe)
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        lhs = draw(masks)
        members = draw(st.lists(masks, min_size=0, max_size=3))
        constraints.append(
            DifferentialConstraint(ground, lhs, SetFamily(ground, members))
        )
    deltas = draw(
        st.lists(
            st.tuples(masks, st.integers(min_value=-3, max_value=3)),
            min_size=0,
            max_size=12,
        )
    )
    shards = draw(st.sampled_from(SHARD_COUNTS))
    route = ROUTES[draw(st.sampled_from(sorted(ROUTES)))](shards)
    return ground, constraints, deltas, ShardPlan(shards, route=route)


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=250)
@given(data=instances())
def test_sharded_tables_equal_unsharded(backend_name, data):
    """Merged-by-sum shard tables == the unsharded incremental tables ==
    a from-scratch batched recompute.  Exact equality on both backends."""
    ground, constraints, deltas, plan = data
    backend = backend_by_name(backend_name)
    sharded = ShardedEvalContext(
        ground, constraints=constraints, plan=plan, backend=backend
    )
    plain = IncrementalEvalContext(
        ground, constraints=constraints, backend=backend
    )
    # materialize the live merged tables up front: they must be
    # delta-maintained, not recomputed at comparison time
    sharded.support_table()
    for c in constraints:
        sharded.differential_table(c.family)
    for mask, delta in deltas:
        assert sharded.apply_delta(mask, delta) == plain.apply_delta(
            mask, delta
        )

    # the vectorized-summation merge equals the live merged tables
    assert tables_equal(sharded.merged_density_table(), sharded.density_table())
    assert tables_equal(sharded.merged_support_table(), sharded.support_table())
    for c in constraints:
        assert tables_equal(
            sharded.merged_differential_table(c.family),
            sharded.differential_table(c.family),
        )

    # and everything equals the unsharded oracle
    families = [c.family.members for c in constraints]
    density, support, diffs = recompute_tables(
        ground.size, plain.density_items(), families, backend
    )
    assert tables_equal(sharded.density_table(), density)
    assert tables_equal(sharded.support_table(), support)
    for c, want in zip(constraints, diffs):
        assert tables_equal(sharded.differential_table(c.family), want)
    assert sharded.violated_constraints() == plain.violated_constraints()


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=150)
@given(data=instances())
def test_shard_supports_are_disjoint_and_complete(backend_name, data):
    """Every nonzero density mask lives on exactly its planned shard;
    empty shards contribute all-zero tables to the merge."""
    ground, constraints, deltas, plan = data
    sharded = ShardedEvalContext(
        ground, constraints=constraints, plan=plan, backend=backend_name
    )
    for mask, delta in deltas:
        sharded.apply_delta(mask, delta)
    seen = {}
    for k in range(plan.shards):
        for mask, value in sharded.shard_density_items(k):
            assert plan.shard_of(mask) == k
            assert mask not in seen
            seen[mask] = value
    assert seen == dict(sharded.density_items())
    size = 1 << ground.size
    for k in range(plan.shards):
        if not sharded.shard_density_items(k):
            assert tables_equal(
                sharded.shard_density_table(k),
                backend_by_name(backend_name).zeros(size),
            )


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=100)
@given(data=instances())
def test_parallel_evaluate_matches_scalar_oracle(backend_name, data):
    """Fan-out verdicts (any-over-shards) and support probes (scalar
    sums) == scalar satisfied_by / value on the rebuilt function."""
    ground, constraints, deltas, plan = data
    sharded = ShardedEvalContext(
        ground, constraints=constraints, plan=plan, backend=backend_name
    )
    for mask, delta in deltas:
        sharded.apply_delta(mask, delta)
    probes = list(range(min(4, 1 << ground.size)))
    result = sharded.evaluate(probes=probes, return_tables=True)
    f = SetFunction.from_density(
        ground,
        dict(sharded.density_items()),
        exact=(backend_name == "exact"),
    )
    for c, violated in zip(constraints, result.violated):
        assert violated == (not c.satisfied_by(f))
        assert violated == sharded.is_violated(c)
    for mask in probes:
        assert result.support[mask] == f.value(mask)
    assert tables_equal(result.density_table, sharded.density_table())
    assert tables_equal(result.support_table, sharded.support_table())


@settings(max_examples=40)
@given(data=instances())
def test_server_answers_match_direct_decide(data):
    """Microbatched, coalesced, memoized answers == decide() -- for
    implication queries against C and checks against a live sharded
    instance."""
    ground, constraints, deltas, plan = data
    cset = ConstraintSet(ground, constraints)
    sharded = ShardedEvalContext(ground, constraints=constraints, plan=plan)
    for mask, delta in deltas:
        sharded.apply_delta(mask, delta)
    targets = list(constraints) + [
        DifferentialConstraint(
            ground, 0, SetFamily(ground, [ground.universe_mask])
        )
    ]

    async def scenario():
        async with ConstraintServer(
            cset, instance=sharded, max_delay=0.0005
        ) as server:
            implied = await asyncio.gather(
                *[server.implies(t) for t in targets]
            )
            checked = await asyncio.gather(
                *[server.check(t) for t in targets]
            )
            return implied, checked

    implied, checked = asyncio.run(scenario())
    f = SetFunction.from_density(ground, dict(sharded.density_items()), exact=True)
    for t, answer in zip(targets, implied):
        assert answer == decide(cset, t)
    for t, answer in zip(targets, checked):
        assert answer == t.satisfied_by(f)
