"""Property suite: transport choices never change any answer.

Delta shipping, journal-overflow resyncs, the vectorized exact
backend's int64-to-object promotion fallback, and ``clear()`` epoch
bumps are all pure transport concerns: a sharded context evaluated
through them must return *byte-identical* results to one that reships
full payloads every sync, and both must equal the unsharded
incremental oracle.  The suite drives random op streams (deltas,
evaluations, executor clears) through a delta-shipping context and a
reship context side by side -- tiny journal bounds force overflows,
``2^70`` deltas force the exact-vec promotion fallback, and the float
backend sticks to integer deltas so float64 sums are exact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.engine import (
    IncrementalEvalContext,
    ParallelExecutor,
    ShardedEvalContext,
)

GROUNDS = [GroundSet("ABCD"[:n]) for n in range(5)]  # |S| = 0..4

#: a delta the vectorized exact backend cannot hold in int64 -- its
#: journal goes unsafe and the next sync must fall back to a reship
BIG = 1 << 70


@st.composite
def scenarios(draw, allow_big):
    ground = draw(st.sampled_from(GROUNDS))
    universe = ground.universe_mask
    masks = st.integers(min_value=0, max_value=universe)
    small = st.integers(min_value=-3, max_value=3)
    values = (
        st.one_of(small, st.sampled_from([BIG, -BIG])) if allow_big else small
    )
    family = SetFamily(ground, draw(st.lists(masks, min_size=0, max_size=2)))
    constraint = DifferentialConstraint(ground, draw(masks), family)
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("delta"), masks, values),
                st.tuples(st.just("eval"), st.just(0), st.just(0)),
                st.tuples(st.just("clear"), st.just(0), st.just(0)),
            ),
            min_size=0,
            max_size=16,
        )
    )
    shards = draw(st.sampled_from([1, 2, 3]))
    bound = draw(st.sampled_from([1, 2, 4, 8]))
    return ground, constraint, ops, shards, bound


def snapshot(result, family):
    return (
        result.violated,
        dict(result.support),
        list(result.density_table),
        list(result.support_table),
        list(result.differential_tables[tuple(family.members)]),
    )


def run_scenario(backend_name, data):
    ground, constraint, ops, shards, bound = data
    family = constraint.family
    probes = list(range(min(2, 1 << ground.size)))
    oracle = IncrementalEvalContext(
        ground, constraints=[constraint], backend=backend_name
    )
    with ParallelExecutor(workers=1) as ex_delta, ParallelExecutor(
        workers=1
    ) as ex_reship:
        delta_ctx = ShardedEvalContext(
            ground,
            constraints=[constraint],
            shards=shards,
            backend=backend_name,
            executor=ex_delta,
            sync="delta",
            journal_bound=bound,
        )
        reship_ctx = ShardedEvalContext(
            ground,
            constraints=[constraint],
            shards=shards,
            backend=backend_name,
            executor=ex_reship,
            sync="reship",
        )
        for op, mask, value in ops:
            if op == "delta":
                oracle.apply_delta(mask, value)
                assert delta_ctx.apply_delta(mask, value) == reship_ctx.apply_delta(
                    mask, value
                )
            elif op == "clear":
                ex_delta.clear()
                ex_reship.clear()
            else:
                a = delta_ctx.evaluate(
                    probes=probes, families=[family], return_tables=True
                )
                b = reship_ctx.evaluate(
                    probes=probes, families=[family], return_tables=True
                )
                assert snapshot(a, family) == snapshot(b, family)
                assert list(a.density_table) == list(oracle.density_table())
                assert list(a.support_table) == list(oracle.support_table())
                assert list(
                    a.differential_tables[tuple(family.members)]
                ) == list(oracle.differential_table(family))
                assert a.violated == (oracle.is_violated(constraint),)
        # final settle: both transports agree after the whole stream
        a = delta_ctx.evaluate(probes=probes, families=[family], return_tables=True)
        b = reship_ctx.evaluate(probes=probes, families=[family], return_tables=True)
        assert snapshot(a, family) == snapshot(b, family)
        assert list(a.density_table) == list(oracle.density_table())
        # a reship context never ships journal records by construction
        assert reship_ctx.transport_stats()["deltas_shipped"] == 0


@pytest.mark.parametrize("backend_name", ["exact", "exact-vec"])
@settings(max_examples=120, deadline=None)
@given(data=scenarios(allow_big=True))
def test_exact_backends_byte_identical_transport_on_off(backend_name, data):
    """Delta shipping (with overflows, promotion fallbacks, and epoch
    bumps in the stream) == full reship == the unsharded oracle, bit
    for bit on both exact backends."""
    run_scenario(backend_name, data)


@settings(max_examples=120, deadline=None)
@given(data=scenarios(allow_big=False))
def test_float_backend_byte_identical_on_integer_deltas(data):
    """Same equivalence on the float backend: integer-valued deltas sum
    exactly in float64, so even the incremental worker-side point adds
    must agree bit for bit with scatter-and-zeta reships."""
    run_scenario("float", data)
