"""Property-based tests for the implication problem and inference system."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    atoms,
    check_proof,
    decomp,
    derive,
    implies_lattice,
    implies_sat,
    refute,
    semantic_implies_over_ideals,
)
from repro.errors import NotImpliedError
from repro.logic import implies_prop

GROUND = GroundSet("ABCD")
UNIVERSE = GROUND.universe_mask

masks = st.integers(min_value=0, max_value=UNIVERSE)
nonempty_masks = st.integers(min_value=1, max_value=UNIVERSE)


@st.composite
def constraints(draw, max_members=3):
    lhs = draw(masks)
    members = draw(st.lists(nonempty_masks, max_size=max_members))
    return DifferentialConstraint(GROUND, lhs, SetFamily(GROUND, members))


@st.composite
def constraint_sets(draw, max_constraints=3):
    cs = draw(st.lists(constraints(), min_size=1, max_size=max_constraints))
    return ConstraintSet(GROUND, cs)


@given(constraint_sets(), constraints())
@settings(max_examples=150, deadline=None)
def test_theorem_35_and_prop_54_agree(cset, target):
    """lattice == SAT == minset == semantic over ideals."""
    lat = implies_lattice(cset, target)
    assert implies_sat(cset, target) == lat
    assert implies_prop(cset, target, "minset") == lat
    assert semantic_implies_over_ideals(cset, target) == lat


@given(constraint_sets(), constraints())
@settings(max_examples=80, deadline=None)
def test_completeness_or_refutation(cset, target):
    """Exactly one of: a checkable derivation, or a counterexample."""
    if implies_lattice(cset, target):
        proof = derive(cset, target, allow_derived=False, check=False)
        assert proof.conclusion == target
        check_proof(proof, cset.constraints, allow_derived=False)
    else:
        f = refute(cset, target)
        assert f is not None
        assert cset.satisfied_by(f)
        assert not target.satisfied_by(f)
        try:
            derive(cset, target)
            raise AssertionError("derive must refuse non-implied targets")
        except NotImpliedError:
            pass


@given(constraints())
@settings(max_examples=80, deadline=None)
def test_remark_45_decompositions(constraint):
    """{c}* = decomp(c)* = atoms(c)* as lattice equalities."""
    own = set(constraint.iter_lattice())
    dec = ConstraintSet(GROUND, decomp(constraint))
    ato = ConstraintSet(GROUND, atoms(constraint))
    assert set(dec.iter_lattice()) == own
    assert set(ato.iter_lattice()) == own


@given(constraint_sets(), constraints(), constraints())
@settings(max_examples=60, deadline=None)
def test_implication_is_transitive_in_premises(cset, mid, target):
    """If C |= mid and C + {mid} |= t then C |= t (cut rule)."""
    if implies_lattice(cset, mid) and implies_lattice(cset.add(mid), target):
        assert implies_lattice(cset, target)


@given(constraints(), masks)
@settings(max_examples=80, deadline=None)
def test_augmentation_and_addition_monotone(constraint, z):
    """Derived constraints are implied (soundness, Prop 4.2)."""
    base = ConstraintSet(GROUND, [constraint])
    augmented = DifferentialConstraint(
        GROUND, constraint.lhs | z, constraint.family
    )
    added = DifferentialConstraint(
        GROUND, constraint.lhs, constraint.family.add(z)
    )
    assert implies_lattice(base, augmented)
    assert implies_lattice(base, added)
