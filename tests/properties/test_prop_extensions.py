"""Property-based tests for the extension modules."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    armstrong_function,
)
from repro.core import transforms as tr
from repro.core.implication import implies_lattice
from repro.measures import MassFunction

GROUND = GroundSet("ABCD")
UNIVERSE = GROUND.universe_mask
SIZE = 1 << len(GROUND)

masks = st.integers(0, UNIVERSE)
nonempty_masks = st.integers(1, UNIVERSE)
int_tables = st.lists(st.integers(-30, 30), min_size=SIZE, max_size=SIZE)


@st.composite
def constraint_sets(draw):
    out = []
    for _ in range(draw(st.integers(1, 3))):
        lhs = draw(masks)
        members = draw(st.lists(nonempty_masks, max_size=2))
        out.append(DifferentialConstraint(GROUND, lhs, SetFamily(GROUND, members)))
    return ConstraintSet(GROUND, out)


@st.composite
def mass_functions(draw):
    weights = draw(
        st.dictionaries(nonempty_masks, st.integers(1, 9), min_size=1, max_size=5)
    )
    total = sum(weights.values())
    return MassFunction(GROUND, {m: w / total for m, w in weights.items()})


# ----------------------------------------------------------------------
# subset transforms
# ----------------------------------------------------------------------
@given(int_tables)
def test_subset_transforms_roundtrip(values):
    table = list(values)
    tr.subset_zeta_inplace(table)
    tr.subset_mobius_inplace(table)
    assert table == values


@given(int_tables)
def test_subset_zeta_is_downward_sum(values):
    import repro.core.subsets as sb

    table = list(values)
    tr.subset_zeta_inplace(table)
    for x in range(SIZE):
        assert table[x] == sum(values[u] for u in sb.iter_subsets(x))


@given(int_tables)
def test_subset_and_superset_transforms_are_mirror(values):
    """Subset zeta == superset zeta conjugated by complement."""
    forward = list(values)
    tr.subset_zeta_inplace(forward)
    mirrored = [values[UNIVERSE ^ x] for x in range(SIZE)]
    tr.superset_zeta_inplace(mirrored)
    for x in range(SIZE):
        assert forward[x] == mirrored[UNIVERSE ^ x]


# ----------------------------------------------------------------------
# Armstrong functions
# ----------------------------------------------------------------------
@given(constraint_sets(), masks, st.lists(nonempty_masks, max_size=2))
@settings(max_examples=100, deadline=None)
def test_armstrong_defining_property(cset, lhs, members):
    f = armstrong_function(cset)
    c = DifferentialConstraint(GROUND, lhs, SetFamily(GROUND, members))
    assert c.satisfied_by(f) == implies_lattice(cset, c)


# ----------------------------------------------------------------------
# Dempster-Shafer
# ----------------------------------------------------------------------
@given(mass_functions())
@settings(max_examples=60, deadline=None)
def test_mass_identities(m):
    assert m.belief(0) == 0.0
    assert abs(m.belief(UNIVERSE) - 1.0) < 1e-9
    assert abs(m.commonality(0) - 1.0) < 1e-9
    for x in GROUND.all_masks():
        assert m.belief(x) <= m.plausibility(x) + 1e-12
        assert abs(
            m.plausibility(x) - (1.0 - m.belief(GROUND.complement(x)))
        ) < 1e-9


@given(mass_functions())
@settings(max_examples=60, deadline=None)
def test_commonality_density_is_mass(m):
    q = m.commonality_function()
    d = q.density()
    for x in GROUND.all_masks():
        assert abs(d.value(x) - m.mass(x)) < 1e-9


@given(mass_functions(), mass_functions())
@settings(max_examples=60, deadline=None)
def test_dempster_multiplicativity(a, b):
    conflict = a.conflict_with(b)
    assume(conflict < 1.0 - 1e-6)
    combined = a.combine(b)
    scale = 1.0 / (1.0 - conflict)
    for x in GROUND.all_masks():
        if x == 0:
            continue
        expected = scale * a.commonality(x) * b.commonality(x)
        assert abs(combined.commonality(x) - expected) < 1e-9


@given(mass_functions(), masks, st.lists(nonempty_masks, min_size=1, max_size=2))
@settings(max_examples=60, deadline=None)
def test_mass_satisfaction_is_focal_avoidance(m, lhs, members):
    c = DifferentialConstraint(GROUND, lhs, SetFamily(GROUND, members))
    focal_inside = any(c.lattice_contains(u) for u in m.focal_elements())
    assert m.satisfies(c) == (not focal_inside)


# ----------------------------------------------------------------------
# frequency satisfiability
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(masks, st.integers(0, 6), st.integers(0, 6)),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=40, deadline=None)
def test_freqsat_witness_respects_bounds(raw_bounds):
    from repro.fis.freqsat import FrequencyConstraint, measure_sat

    bounds = [
        FrequencyConstraint(x, min(a, b), max(a, b)) for x, a, b in raw_bounds
    ]
    witness = measure_sat(GROUND, bounds)
    if witness is not None:
        for b in bounds:
            assert b.satisfied_by(witness, tol=1e-6)
        assert witness.is_nonnegative_density(1e-7)


@given(st.integers(1, 8), masks)
@settings(max_examples=40, deadline=None)
def test_freqsat_antimonotonicity_enforced(total, x):
    """Demanding s(X) > s((/)) is always infeasible."""
    from repro.fis.freqsat import FrequencyConstraint, measure_sat

    assume(x != 0)
    bounds = [
        FrequencyConstraint(0, total, total),
        FrequencyConstraint(x, total + 1, None),
    ]
    assert measure_sat(GROUND, bounds) is None
