"""Property-based tests for the FIS substrate (Section 6)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.core import subsets as sb
from repro.fis import (
    BasketDatabase,
    DisjunctiveConstraint,
    apriori,
    bruteforce_frequent,
    induce_basket_database,
    is_disjunctive,
    is_frequency_function,
    is_support_function,
    mine_concise,
    negative_border_of,
    verify_lossless,
)

GROUND = GroundSet("ABCDE")
UNIVERSE = GROUND.universe_mask

basket_lists = st.lists(st.integers(0, UNIVERSE), max_size=25)
masks = st.integers(0, UNIVERSE)
nonempty_masks = st.integers(1, UNIVERSE)


@given(basket_lists)
def test_support_function_roundtrip(baskets):
    """baskets -> support function -> baskets is the identity (sorted)."""
    db = BasketDatabase(GROUND, baskets)
    f = db.dense_support_function()
    assert is_support_function(f)
    assert is_frequency_function(f)
    back = induce_basket_database(f)
    assert sorted(back.baskets) == sorted(db.baskets)


@given(basket_lists, masks)
def test_support_antimonotone(baskets, x):
    """s_B is antimonotone: bigger itemsets have smaller support."""
    db = BasketDatabase(GROUND, baskets)
    support = db.support(x)
    for sup in sb.iter_supersets(x, UNIVERSE):
        assert db.support(sup) <= support


@given(basket_lists, st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_apriori_exact(baskets, kappa):
    db = BasketDatabase(GROUND, baskets)
    res = apriori(db, kappa)
    want = bruteforce_frequent(db, kappa)
    assert res.frequent == want
    assert set(res.negative_border) == negative_border_of(want, GROUND)


@given(basket_lists, masks, st.lists(nonempty_masks, max_size=3))
@settings(max_examples=100, deadline=None)
def test_proposition_63(baskets, lhs, members):
    """B satisfies X =>disj Y iff s_B satisfies X -> Y."""
    db = BasketDatabase(GROUND, baskets)
    family = SetFamily(GROUND, members)
    disj = DisjunctiveConstraint(GROUND, lhs, family)
    diff = DifferentialConstraint(GROUND, lhs, family)
    assert disj.satisfied_by(db) == diff.satisfied_by(db.support_function())


@given(basket_lists, st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_concise_representation_lossless(baskets, kappa):
    db = BasketDatabase(GROUND, baskets)
    rep = mine_concise(db, kappa, max_rhs=2)
    assert verify_lossless(db, rep)


@given(basket_lists, masks)
@settings(max_examples=60, deadline=None)
def test_disjunctive_upward_closed(baskets, x):
    db = BasketDatabase(GROUND, baskets)
    if is_disjunctive(db, x, max_rhs=2):
        for sup in sb.iter_supersets(x, UNIVERSE):
            assert is_disjunctive(db, sup, max_rhs=2)


@given(basket_lists, basket_lists)
def test_support_additive_over_concatenation(a, b):
    """s_{A ++ B} = s_A + s_B -- supports are measures over lists."""
    db_a = BasketDatabase(GROUND, a)
    db_b = BasketDatabase(GROUND, b)
    both = BasketDatabase(GROUND, list(a) + list(b))
    for x in (0, 1, 3, 7, UNIVERSE):
        assert both.support(x) == db_a.support(x) + db_b.support(x)
