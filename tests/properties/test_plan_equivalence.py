"""Property suite: every tier the planner can pick is the same engine.

The planner chooses *how* to evaluate, never *what* the answer is: for
any workload, any tier it can resolve (incremental, sharded at any
shard count it would pick) must produce byte-identical density /
support / differential tables and identical constraint verdicts on both
backends.  Integer-valued deltas keep float64 sums exact, so equality
is literal ``==`` on both backends, never approximate.

The suite also drives the **online promotion** path: an auto session
with a promotion-happy planner is streamed transaction by transaction
next to a pinned incremental oracle, and after every commit (including
the one that promotes mid-stream) tables, verdicts, zero sets and
support values must agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.engine import (
    EngineConfig,
    Planner,
    StreamSession,
    Workload,
    build_context,
    default_planner,
)
from repro.engine.plan import LIVE_TIERS

GROUNDS = [GroundSet("ABCDE"[:n]) for n in range(6)]  # |S| = 0..5

BACKENDS = ["exact", "float"]


def tables_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(
            np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
        )
    return list(a) == list(b)


@st.composite
def instances(draw):
    """Ground set, constraints, and an integer transaction stream."""
    ground = draw(st.sampled_from(GROUNDS))
    universe = ground.universe_mask
    masks = st.integers(min_value=0, max_value=universe)
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        lhs = draw(masks)
        members = draw(st.lists(masks, min_size=0, max_size=3))
        constraints.append(
            DifferentialConstraint(ground, lhs, SetFamily(ground, members))
        )
    transactions = draw(
        st.lists(
            st.lists(
                st.tuples(masks, st.integers(min_value=-3, max_value=3)),
                min_size=1,
                max_size=3,
            ),
            min_size=0,
            max_size=8,
        )
    )
    return ground, constraints, transactions


def _live_plans(n, config_backend):
    """Every live plan the stock planner can resolve for some workload:
    the incremental tier plus the sharded tier at each shard count a
    host in ``cpus in {2, 4, 8, 64}`` would be assigned."""
    planner = default_planner()
    plans = [
        planner.plan(
            Workload(n=n, streaming=True),
            EngineConfig(engine="incremental", backend=config_backend),
        )
    ]
    seen = set()
    for cpus in (2, 4, 8, 64):
        plan = planner.plan(
            Workload(
                n=n,
                streaming=True,
                cpus=cpus,
                density_size=planner.SHARD_MIN_DENSITY,
            ),
            EngineConfig(
                engine="sharded", backend=config_backend, workers=1
            ),
        )
        if plan.shards not in seen:
            seen.add(plan.shards)
            plans.append(plan)
    return plans


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=120)
@given(data=instances())
def test_every_plannable_tier_is_byte_identical(backend_name, data):
    ground, constraints, transactions = data
    deltas = [d for tx in transactions for d in tx]
    contexts = [
        build_context(plan, ground, constraints=constraints)
        for plan in _live_plans(ground.size, backend_name)
    ]
    assert len(contexts) >= 2  # incremental + at least one sharded plan
    for ctx in contexts:
        ctx.support_table()  # materialize: must be delta-maintained
        for c in constraints:
            ctx.differential_table(c.family)
        for mask, delta in deltas:
            ctx.apply_delta(mask, delta)
    oracle, rest = contexts[0], contexts[1:]
    for ctx in rest:
        assert tables_equal(ctx.density_table(), oracle.density_table())
        assert tables_equal(ctx.support_table(), oracle.support_table())
        for c in constraints:
            assert tables_equal(
                ctx.differential_table(c.family),
                oracle.differential_table(c.family),
            )
        assert ctx.zero_set() == oracle.zero_set()
        assert ctx.violated_constraints() == oracle.violated_constraints()


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=120)
@given(data=instances())
def test_online_promotion_is_byte_identical_mid_stream(backend_name, data):
    """An auto session that promotes mid-stream never diverges from a
    pinned incremental oracle -- checked after *every* transaction, so
    the commit that crosses the promotion boundary is covered."""
    ground, constraints, transactions = data
    promoting = StreamSession(
        ground,
        constraints,
        config=EngineConfig(engine="auto", backend=backend_name),
        planner=Planner(
            SHARD_MIN_CPUS=1,
            SHARD_MIN_N=0,
            SHARD_MIN_DENSITY=1,
            REPLAN_EVERY=1,
        ),
    )
    oracle = StreamSession(
        ground,
        constraints,
        config=EngineConfig(engine="incremental", backend=backend_name),
    )
    for tx in transactions:
        r1 = promoting.apply(tx)
        r2 = oracle.apply(tx)
        assert r1.newly_violated == r2.newly_violated
        assert r1.restored == r2.restored
        assert r1.violated == r2.violated
        assert tables_equal(
            promoting.context.density_table(), oracle.context.density_table()
        )
        assert tables_equal(
            promoting.context.support_table(), oracle.context.support_table()
        )
        for c in constraints:
            assert tables_equal(
                promoting.context.differential_table(c.family),
                oracle.context.differential_table(c.family),
            )
        assert promoting.context.zero_set() == oracle.context.zero_set()
    if transactions and promoting.context.support_size():
        # replan fires after every transaction and any nonzero density
        # clears every bar, so a stream that ends loaded must have
        # crossed tiers exactly once
        assert promoting.promotions == 1
        assert promoting.plan.tier == "sharded"
    if promoting.promotions:
        assert promoting.plan.tier == "sharded"
