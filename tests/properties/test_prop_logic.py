"""Property-based tests for the propositional substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import GroundSet
from repro.logic import (
    And,
    Implies,
    Not,
    Or,
    Var,
    VariableMap,
    assignment_of_mask,
    enumerate_models,
    implies_by_minsets,
    minset,
    solve,
    to_cnf_clauses,
    to_dnf_terms,
)

GROUND = GroundSet("ABC")
NAMES = list(GROUND.elements)

variables = st.sampled_from(NAMES).map(Var)
formulas = st.recursive(
    variables,
    lambda children: st.one_of(
        children.map(Not),
        st.tuples(children, children).map(And),
        st.tuples(children, children).map(Or),
        st.tuples(children, children).map(lambda ab: Implies(*ab)),
    ),
    max_leaves=8,
)


def _truth_table(formula):
    return {
        mask: formula.evaluate(assignment_of_mask(GROUND, mask))
        for mask in GROUND.all_masks()
    }


@given(formulas)
@settings(max_examples=150, deadline=None)
def test_nnf_preserves_semantics(formula):
    assert _truth_table(formula) == _truth_table(formula.to_nnf())


@given(formulas)
@settings(max_examples=150, deadline=None)
def test_dnf_terms_preserve_semantics(formula):
    terms = to_dnf_terms(formula)
    for mask in GROUND.all_masks():
        env = assignment_of_mask(GROUND, mask)
        dnf_value = any(
            all(env[v] for v in pos) and not any(env[v] for v in neg)
            for pos, neg in terms
        )
        assert dnf_value == formula.evaluate(env)


@given(formulas)
@settings(max_examples=150, deadline=None)
def test_tseitin_equisatisfiable(formula):
    vm = VariableMap()
    for name in NAMES:
        vm.index_of(name)
    clauses = to_cnf_clauses(formula, vm)
    sat_direct = any(_truth_table(formula).values())
    assert (solve(clauses) is not None) == sat_direct


@given(formulas)
@settings(max_examples=100, deadline=None)
def test_minset_is_truth_set(formula):
    table = _truth_table(formula)
    assert minset(formula, GROUND) == {m for m, v in table.items() if v}


@given(st.lists(formulas, min_size=1, max_size=3), formulas)
@settings(max_examples=100, deadline=None)
def test_minset_implication_matches_truth_tables(premises, conclusion):
    want = True
    for mask in GROUND.all_masks():
        env = assignment_of_mask(GROUND, mask)
        if all(p.evaluate(env) for p in premises) and not conclusion.evaluate(env):
            want = False
            break
    assert implies_by_minsets(premises, conclusion, GROUND) == want


clause_lists = st.lists(
    st.lists(
        st.integers(1, 5).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    ),
    max_size=10,
)


@given(clause_lists)
@settings(max_examples=150, deadline=None)
def test_dpll_agrees_with_enumeration(clauses):
    variables_used = sorted({abs(l) for c in clauses for l in c})
    got = solve(clauses)
    models = enumerate_models(clauses, variables_used)
    if got is None:
        assert not models
    else:
        assert models


@given(clause_lists)
@settings(max_examples=100, deadline=None)
def test_dpll_model_extends_to_total_model(clauses):
    from repro.logic import check_model

    got = solve(clauses)
    if got is None:
        return
    variables_used = sorted({abs(l) for c in clauses for l in c})
    free = [v for v in variables_used if v not in got]
    extended = False
    for bits in range(1 << len(free)):
        model = dict(got)
        for i, v in enumerate(free):
            model[v] = bool(bits >> i & 1)
        if check_model(clauses, model):
            extended = True
            break
    assert extended
