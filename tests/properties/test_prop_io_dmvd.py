"""Property-based tests for serialization and degenerate MVDs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import io
from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    check_proof,
    derive,
)
from repro.core.implication import implies_lattice
from repro.errors import NotImpliedError
from repro.relational.dmvd import DegenerateMVD, implies_dmvd

GROUND = GroundSet("ABCD")
UNIVERSE = GROUND.universe_mask

masks = st.integers(0, UNIVERSE)
nonempty_masks = st.integers(1, UNIVERSE)


@st.composite
def constraint_sets(draw):
    out = []
    for _ in range(draw(st.integers(1, 3))):
        lhs = draw(masks)
        members = draw(st.lists(nonempty_masks, max_size=3))
        out.append(DifferentialConstraint(GROUND, lhs, SetFamily(GROUND, members)))
    return ConstraintSet(GROUND, out)


@given(constraint_sets())
@settings(max_examples=80, deadline=None)
def test_constraint_set_json_roundtrip(cset):
    assert io.loads(io.dumps(cset)) == cset


@given(constraint_sets(), masks, st.lists(nonempty_masks, max_size=2))
@settings(max_examples=50, deadline=None)
def test_proof_json_roundtrip_when_implied(cset, lhs, members):
    target = DifferentialConstraint(GROUND, lhs, SetFamily(GROUND, members))
    try:
        proof = derive(cset, target, check=False)
    except NotImpliedError:
        return
    back = io.loads(io.dumps(proof))
    assert back.conclusion == target
    check_proof(back, cset.constraints)


@st.composite
def dmvds(draw):
    lhs = draw(masks)
    left = draw(masks) & ~lhs
    return DegenerateMVD(GROUND, lhs, left)


@given(dmvds())
@settings(max_examples=80, deadline=None)
def test_dmvd_branches_partition(d):
    assert d.left & d.right == 0
    assert d.lhs | d.left | d.right == UNIVERSE
    assert d == DegenerateMVD(GROUND, d.lhs, d.right)


@given(dmvds(), dmvds())
@settings(max_examples=60, deadline=None)
def test_dmvd_implication_is_differential_implication(premise, target):
    got = implies_dmvd([premise], target)
    want = implies_lattice(
        ConstraintSet(GROUND, [premise.to_differential()]),
        target.to_differential(),
    )
    assert got == want


@given(dmvds())
@settings(max_examples=60, deadline=None)
def test_dmvd_self_implication(d):
    assert implies_dmvd([d], d)
    # and the complementary presentation
    assert implies_dmvd([d], DegenerateMVD(GROUND, d.lhs, d.right))
