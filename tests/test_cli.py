"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, parse_basket_file, parse_constraint_file


@pytest.fixture
def constraint_file(tmp_path):
    path = tmp_path / "constraints.txt"
    path.write_text(
        "# example 3.4\n"
        "ABC\n"
        "\n"
        "A -> B\n"
        "B -> C\n"
    )
    return str(path)


@pytest.fixture
def basket_file(tmp_path):
    path = tmp_path / "baskets.txt"
    path.write_text(
        "ABC\n"
        "AB\nAB\nABC\nC\nBC\n"
    )
    return str(path)


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParsing:
    def test_constraint_file(self):
        ground, cset = parse_constraint_file(
            ["# comment", "ABCD", "A -> B, CD", "", "C -> D"]
        )
        assert ground.size == 4
        assert len(cset) == 2

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            parse_constraint_file(["", "# only comments"])

    def test_basket_file(self):
        ground, db = parse_basket_file(["AB", "A", "AB", "B"])
        assert len(db) == 3
        assert db.support(ground.parse("A")) == 2


class TestImplies:
    def test_implied(self, constraint_file):
        code, text = _run(["implies", constraint_file, "A -> C"])
        assert code == 0
        assert "IMPLIED" in text and "NOT" not in text

    def test_not_implied_with_counterexample(self, constraint_file):
        code, text = _run(
            ["implies", constraint_file, "C -> A", "--counterexample"]
        )
        assert code == 1
        assert "NOT IMPLIED" in text
        assert "counterexample" in text

    def test_methods(self, constraint_file):
        for method in ("engine", "lattice", "sat", "fd", "bitset"):
            code, _ = _run(
                ["implies", constraint_file, "A -> C", "--method", method]
            )
            assert code == 0

    def test_backend_flag(self, constraint_file):
        for backend in ("exact", "float"):
            code, text = _run(
                ["implies", constraint_file, "A -> C", "--backend", backend]
            )
            assert code == 0
            assert "IMPLIED" in text and "NOT" not in text
            # the witness re-check runs on the selected backend
            code, text = _run(
                [
                    "implies", constraint_file, "C -> A",
                    "--backend", backend, "--method", "engine",
                    "--counterexample",
                ]
            )
            assert code == 1
            assert f"witness checked on the {backend} backend: ok" in text

    def test_counterexample_without_backend_checks_exact(self, constraint_file):
        code, text = _run(
            ["implies", constraint_file, "C -> A", "--counterexample"]
        )
        assert code == 1
        assert "witness checked on the exact backend: ok" in text

    def test_backend_rejects_unknown(self, constraint_file):
        with pytest.raises(SystemExit):
            _run(["implies", constraint_file, "A -> C", "--backend", "decimal"])

    def test_bad_file(self):
        code, text = _run(["implies", "/nonexistent/file", "A -> B"])
        assert code == 2
        assert "error:" in text


class TestPlan:
    def test_one_shot_plan(self, constraint_file):
        code, text = _run(["plan", constraint_file])
        assert code == 0
        assert "plan: tier=batched, backend=exact, shards=1, workers=1" in text

    def test_streaming_plan_with_baskets(self, constraint_file, basket_file):
        code, text = _run(["plan", constraint_file, "--baskets", basket_file])
        assert code == 0
        assert "tier=incremental" in text

    def test_explain_prints_the_cost_model(self, constraint_file):
        code, text = _run(["plan", constraint_file, "--explain"])
        assert code == 0
        assert "tier=batched" in text
        assert "one-shot workload" in text
        # the implication brain is the same planner
        assert "implies method=" in text

    def test_pinned_engine_flag(self, constraint_file):
        code, text = _run(["plan", constraint_file, "--engine", "sharded"])
        assert code == 0
        assert "tier=sharded" in text

    def test_deprecated_aliases_still_pin(self, constraint_file, capsys):
        code, text = _run(["plan", constraint_file, "--backend", "float"])
        assert code == 0
        assert "backend=float" in text
        # the deprecation notice goes to stderr, not the report
        assert "deprecated" not in text
        assert "deprecated" in capsys.readouterr().err

    def test_unsatisfiable_pinning_is_loud(self, constraint_file):
        code, text = _run(
            ["plan", constraint_file, "--engine", "batched", "--shards", "2"]
        )
        assert code == 2
        assert "unsharded tier" in text


class TestDerive:
    def test_derivation_printed(self, constraint_file):
        code, text = _run(["derive", constraint_file, "A -> C"])
        assert code == 0
        assert "given" in text
        assert "checked" in text

    def test_primitive_mode(self, constraint_file):
        code, text = _run(
            ["derive", constraint_file, "A -> C", "--primitive"]
        )
        assert code == 0
        for macro in ("projection", "transitivity", "union", "chain"):
            assert macro not in text

    def test_refusal(self, constraint_file):
        code, text = _run(["derive", constraint_file, "C -> A"])
        assert code == 1
        assert "NOT IMPLIED" in text


class TestClosure:
    def test_closure_output(self, constraint_file):
        code, text = _run(["closure", constraint_file])
        assert code == 0
        assert "atomic closure" in text
        assert "minimal cover" in text

    def test_cover_drops_redundant(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("ABC\nA -> B\nB -> C\nA -> C\n")
        code, text = _run(["closure", str(path)])
        assert code == 0
        assert "minimal cover (2 of 3" in text

    def test_empty_closure_marked(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("ABC\nAB -> B\n")  # only a trivial constraint
        code, text = _run(["closure", str(path)])
        assert code == 0
        assert "(empty)" in text


class TestMine:
    def test_apriori_mode(self, basket_file):
        code, text = _run(["mine", basket_file, "--minsupport", "2"])
        assert code == 0
        assert "frequent itemsets" in text
        assert "AB" in text

    def test_concise_mode(self, basket_file):
        code, text = _run(
            ["mine", basket_file, "--minsupport", "2", "--concise"]
        )
        assert code == 0
        assert "FDFree" in text

    def test_stdin_not_required_for_files(self, basket_file):
        code, _ = _run(["mine", basket_file])
        assert code == 0


class TestDiscover:
    def test_rules_printed(self, basket_file):
        code, text = _run(["discover", basket_file])
        assert code == 0
        assert "minimal disjunctive rules" in text

    def test_cover_flag(self, basket_file):
        code, text = _run(["discover", basket_file, "--cover"])
        assert code == 0
        assert "differential-theory cover" in text
        assert "->" in text

    def test_perfect_correlation_discovered(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("ABC\nAB\nAB\nABC\nC\n")
        code, text = _run(["discover", str(path), "--rule-width", "1"])
        assert code == 0
        assert "A =>disj {B}" in text
        assert "B =>disj {A}" in text


@pytest.fixture
def log_file(tmp_path):
    path = tmp_path / "log.txt"
    path.write_text(
        "# violate A -> B, then heal it\n"
        "+ AC 2\n"
        "commit\n"
        "= AC 0   # update: retract both rows\n"
        "+ AB\n"
        "commit\n"
    )
    return str(path)


class TestStream:
    def test_output_stamped_with_engine_config(self, constraint_file, log_file):
        code, text = _run(["stream", constraint_file, log_file])
        assert (
            "# engine: tier=incremental, backend=exact, shards=1, workers=1"
            in text
        )
        _, text = _run(
            ["stream", constraint_file, log_file, "--backend", "float",
             "--shards", "2", "--workers", "1"]
        )
        assert (
            "# engine: tier=sharded, backend=float, shards=2, workers=1"
            in text
        )

    def test_sharded_replay_matches_unsharded(self, constraint_file, log_file):
        code_plain, plain = _run(["stream", constraint_file, log_file])
        code_sharded, sharded = _run(
            ["stream", constraint_file, log_file, "--shards", "3",
             "--workers", "1"]
        )
        assert code_plain == code_sharded
        # identical transcripts modulo the configuration stamp and the
        # sharded run's extra fan-out cross-check line
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        assert strip(plain) == strip(sharded)
        assert "# fan-out check over 3 shards / 1 worker(s): consistent" in sharded
        assert "fan-out" not in plain

    def test_invalid_shard_count_rejected(self, constraint_file, log_file):
        code, text = _run(
            ["stream", constraint_file, log_file, "--shards", "0"]
        )
        assert code == 2
        assert "--shards must be >= 1" in text

    def test_replay_reports_flips(self, constraint_file, log_file):
        code, text = _run(["stream", constraint_file, log_file])
        assert "tx 1: +1 violated" in text
        assert "violated: A -> {B}" in text
        assert "tx 2:" in text and "restored: A -> {B}" in text
        # tx 2 inserts AB, which violates B -> C
        assert "violated: B -> {C}" in text
        assert "final: 1/2 constraints violated" in text
        assert code == 1

    def test_clean_stream_exits_zero(self, constraint_file, tmp_path):
        log = tmp_path / "clean.txt"
        log.write_text("+ ABC 3\ncommit\n")
        code, text = _run(["stream", constraint_file, str(log)])
        assert code == 0
        assert "final: 0/2 constraints violated" in text

    def test_basket_seed_and_float_backend(self, constraint_file, basket_file, tmp_path):
        log = tmp_path / "log.txt"
        log.write_text("- AB\n- AB\n- C\n- BC\ncommit\n")
        code, text = _run(
            ["stream", constraint_file, str(log), "--baskets", basket_file,
             "--backend", "float"]
        )
        # the AB baskets violate B -> C at seed time (A -> B holds)
        assert "seeded 5 rows; 1/2 constraints violated" in text
        # removing every basket except ABC restores it
        assert "restored: B -> {C}" in text
        assert "final: 0/2 constraints violated" in text
        assert code == 0

    def test_ground_set_mismatch_rejected(self, constraint_file, tmp_path):
        baskets = tmp_path / "other.txt"
        baskets.write_text("AB\nAB\n")
        log = tmp_path / "log.txt"
        log.write_text("+ AB\ncommit\n")
        code, text = _run(
            ["stream", constraint_file, str(log), "--baskets", str(baskets)]
        )
        assert code == 2
        assert "error" in text

    def test_bad_log_line_is_an_error(self, constraint_file, tmp_path):
        log = tmp_path / "log.txt"
        log.write_text("* AB\n")
        code, text = _run(["stream", constraint_file, str(log)])
        assert code == 2
        assert "error" in text


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(
        "# implied twice (coalesces), then an instance check\n"
        "A -> C\n"
        "implies A -> C\n"
        "check A -> B\n"
        "check B -> C\n"
        "implies C -> A\n"
    )
    return str(path)


class TestServe:
    def test_check_without_instance_is_an_error(
        self, constraint_file, query_file
    ):
        code, text = _run(["serve", constraint_file, query_file])
        assert code == 2
        assert "no live instance" in text

    def test_full_serving_with_instance(
        self, constraint_file, query_file, basket_file
    ):
        code, text = _run(
            ["serve", constraint_file, query_file, "--baskets", basket_file,
             "--shards", "2", "--workers", "1"]
        )
        assert (
            "# engine: tier=sharded, backend=exact, shards=2, workers=1"
            in text
        )
        assert text.count("IMPLIED: A -> {C}") == 2

    def test_engine_sharded_lets_the_planner_resolve_shards(
        self, constraint_file, query_file, basket_file
    ):
        code, text = _run(
            ["serve", constraint_file, query_file, "--baskets", basket_file,
             "--engine", "sharded"]
        )
        assert code in (0, 1)
        # the planner resolves at least two shards for a pinned sharded
        # tier (it is not silently pinned back to one)
        stamp = next(l for l in text.splitlines() if l.startswith("# engine"))
        assert "tier=sharded" in stamp and "shards=1" not in stamp
        assert "NOT IMPLIED: C -> {A}" in text
        # the AB baskets violate B -> C; A -> B holds on the instance
        assert "SATISFIED: A -> {B}" in text
        assert "VIOLATED: B -> {C}" in text
        assert "# served 5 queries" in text
        assert "coalesced" in text and "cache hits" in text
        assert code == 1  # some answers were negative

    def test_all_positive_exits_zero(self, constraint_file, tmp_path):
        queries = tmp_path / "q.txt"
        queries.write_text("A -> B\nA -> C\nB -> C\n")
        code, text = _run(["serve", constraint_file, str(queries)])
        assert code == 0
        assert "NOT IMPLIED" not in text

    def test_coalescing_visible_in_stats(self, constraint_file, tmp_path):
        queries = tmp_path / "q.txt"
        queries.write_text("A -> C\n" * 8)
        code, text = _run(["serve", constraint_file, str(queries)])
        assert code == 0
        assert "# served 8 queries" in text
        stats_line = [l for l in text.splitlines() if "coalesced" in l][0]
        coalesced = int(stats_line.split("batches:")[1].split("coalesced")[0])
        assert coalesced >= 1

    def test_bad_query_line_is_an_error(self, constraint_file, tmp_path):
        queries = tmp_path / "q.txt"
        queries.write_text("A -> Z\n")  # Z is not in the ground set
        code, text = _run(["serve", constraint_file, str(queries)])
        assert code == 2
        assert "error" in text


class TestStreamDurable:
    def test_replay_resumes_across_runs(self, constraint_file, tmp_path):
        data = str(tmp_path / "data")
        log1 = tmp_path / "log1.txt"
        log1.write_text("+ AB 2\ncommit\n+ A\ncommit\n")
        log2 = tmp_path / "log2.txt"
        log2.write_text("- A\ncommit\n")
        code, text = _run(
            ["stream", constraint_file, str(log1), "--data-dir", data]
        )
        assert "# snapshotted tx 2" in text
        code, text = _run(
            ["stream", constraint_file, str(log2), "--data-dir", data]
        )
        assert "recovered 2 transaction(s)" in text
        assert "tx 3:" in text and "restored: A -> {B}" in text

    def test_snapshot_every_flag(self, constraint_file, tmp_path):
        import os

        data = str(tmp_path / "data")
        log = tmp_path / "log.txt"
        log.write_text("+ AB\ncommit\n" * 4)
        _run(["stream", constraint_file, str(log), "--data-dir", data,
              "--snapshot-every", "2", "--fsync", "never"])
        snapshots = [f for f in os.listdir(data) if f.startswith("snapshot-")]
        assert f"snapshot-{4:016d}.json" in snapshots


class TestServeNetwork:
    def test_batch_mode_without_queries_is_an_error(self, constraint_file):
        code, text = _run(["serve", constraint_file])
        assert code == 2
        assert "--port" in text

    def test_network_mode_serves_and_recovers(self, constraint_file, tmp_path):
        import threading

        from repro.engine.net import ReproClient

        data = str(tmp_path / "data")
        ports = []

        def run_service(out_lines):
            import io

            class PortGrabber(io.StringIO):
                def write(self, text):
                    for line in text.splitlines():
                        if line.startswith("# listening on"):
                            ports.append(int(line.rsplit(":", 1)[1]))
                    return super().write(text)

            out = PortGrabber()
            code = main(
                ["serve", constraint_file, "--port", "0",
                 "--data-dir", data, "--snapshot-every", "2"],
                out=out,
            )
            out_lines.append((code, out.getvalue()))

        for round_no in range(2):
            results = []
            thread = threading.Thread(
                target=run_service, args=(results,), daemon=True
            )
            thread.start()
            deadline = 30.0
            import time

            waited = 0.0
            while len(ports) <= round_no and waited < deadline:
                time.sleep(0.02)
                waited += 0.02
            assert len(ports) > round_no, "service never printed its port"
            client = ReproClient("127.0.0.1", ports[round_no])
            client.wait_ready(timeout=10)
            if round_no == 0:
                client.delta(["+ AB 3"])
                client.delta(["+ A"])
                assert client.check("A -> B") is False
                assert client.implies("A -> C") is True
            else:
                health = client.health()
                assert health["transactions"] == 2  # recovered
                assert client.probe("AB") == 3
            client.shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive()
            code, text = results[0]
            assert code == 0
            assert "# listening on 127.0.0.1:" in text
            assert "# drained after 2 transaction(s)" in text
            if round_no == 1:
                assert "recovered 2 transaction(s)" in text
