"""Unit tests for the incremental context and stream sessions, plus the
degenerate-input audit (empty ground set, singleton ``S``, all-zero
density) comparing engine and scalar paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
    decide,
    differential_function,
    differential_function_by_definition,
)
from repro.engine import (
    IncrementalEvalContext,
    StreamSession,
    parse_transaction_log,
    recompute_tables,
)
from repro.engine.backends import EXACT, FLOAT
from repro.fis import BasketDatabase
from repro.fis.discovery import discover_cover, theory_of, zero_set
from repro.relational import FunctionalDependency, Relation, StreamingFDChecker


class TestIncrementalContext:
    def test_single_insert_violates_and_restores(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B")
        ctx = IncrementalEvalContext(ground_abcd, constraints=[c])
        flips = ctx.apply_delta(ground_abcd.parse("AC"), 1)
        assert flips == [(c, True)]
        assert ctx.violated_constraints() == (c,)
        flips = ctx.apply_delta(ground_abcd.parse("AC"), -1)
        assert flips == [(c, False)]
        assert ctx.violated_constraints() == ()

    def test_non_crossing_delta_reports_no_flip(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B")
        ctx = IncrementalEvalContext(ground_abcd, constraints=[c])
        assert ctx.apply_delta(ground_abcd.parse("AC"), 1) == [(c, True)]
        # same mask again: density 1 -> 2, still nonzero, no flip
        assert ctx.apply_delta(ground_abcd.parse("AC"), 1) == []

    def test_blocked_delta_leaves_differential_table_alone(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        ctx = IncrementalEvalContext(ground_abcd)
        table = ctx.differential_table(fam)
        before = list(table)
        # ABD contains member B -> blocked for this family
        ctx.apply_delta(ground_abcd.parse("ABD"), 5)
        assert list(ctx.differential_table(fam)) == before
        # but the density and support did move
        assert ctx.density_value(ground_abcd.parse("ABD")) == 5
        assert ctx.value(ground_abcd.parse("AB")) == 5

    def test_seed_density_not_a_stream_event(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        ctx = IncrementalEvalContext(
            ground_abc, density={ground_abc.parse("AC"): 2}, constraints=[c]
        )
        assert ctx.is_violated(c)
        assert ctx.theory_version == 0
        assert ctx.zero_version == 0

    def test_versions_bump_only_on_flips_and_crossings(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        ctx = IncrementalEvalContext(ground_abc, constraints=[c])
        snap = ctx.satisfied_constraints()
        zeros = ctx.zero_set()
        tv, zv = ctx.theory_version, ctx.zero_version
        # a delta on a mask outside L(A, {B}): crossing but no flip
        ctx.apply_delta(ground_abc.parse("AB"), 1)
        assert ctx.zero_version == zv + 1
        assert ctx.theory_version == tv
        assert ctx.satisfied_constraints() is snap  # fingerprint stable
        assert ctx.zero_set() is not zeros
        # a non-crossing delta: neither version moves
        zv = ctx.zero_version
        zeros = ctx.zero_set()
        ctx.apply_delta(ground_abc.parse("AB"), 1)
        assert (ctx.theory_version, ctx.zero_version) == (tv, zv)
        assert ctx.zero_set() is zeros
        # a flipping delta: both move, snapshot invalidated
        ctx.apply_delta(ground_abc.parse("AC"), 1)
        assert ctx.theory_version == tv + 1
        assert ctx.satisfied_constraints() == ()

    def test_batch_net_reporting_collapses_churn(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        ctx = IncrementalEvalContext(ground_abc, constraints=[c])
        tv = ctx.theory_version
        ac = ground_abc.parse("AC")
        newly, restored = ctx.apply_batch([(ac, 1), (ac, -1)])
        assert newly == () and restored == ()
        # violate-then-restore within one batch is not a net change
        assert ctx.theory_version == tv

    def test_float_tolerance_crossing_matches_scalar(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        ctx = IncrementalEvalContext(ground_abc, constraints=[c], backend="float")
        mask = ground_abc.parse("AC")
        ctx.apply_delta(mask, 5e-10)  # below DEFAULT_TOLERANCE
        f = SparseDensityFunction(ground_abc, {mask: 5e-10})
        assert c.satisfied_by(f) is True
        assert not ctx.is_violated(c)
        ctx.apply_delta(mask, 1.0)
        assert ctx.is_violated(c)

    def test_zero_set_with_foreign_tolerance_sees_subtol_residue(
        self, ground_abc
    ):
        """A tolerance finer than the context's resolves density residues
        the context itself rounds to zero (parity with the scalar path)."""
        from repro.fis.discovery import zero_set as discovery_zero_set

        ctx = IncrementalEvalContext(ground_abc, backend="float")
        mask = ground_abc.parse("AC")
        ctx.apply_delta(mask, 1e-10)  # below the context's 1e-9
        assert mask in ctx.zero_set()  # context tolerance: a zero
        assert mask not in ctx.zero_set(tol=1e-12)
        f = SparseDensityFunction(ground_abc, {mask: 1e-10})
        assert ctx.zero_set(tol=1e-12) == frozenset(
            discovery_zero_set(f, tol=1e-12)
        )

    def test_delta_affects_hook_drives_monitoring(self, ground_abc):
        """The engine fires constraint monitoring through the
        delta_affects streaming hook on the core constraint types, and
        honors a custom monitor's own hook."""
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        assert c.delta_affects(ground_abc.parse("AC"))
        assert not c.delta_affects(ground_abc.parse("AB"))
        cset = ConstraintSet(ground_abc, [c])
        assert cset.delta_affects(ground_abc.parse("AC"))

        class EverythingMonitor:
            """Duck-typed monitor violated by any nonzero density."""

            def delta_affects(self, mask):
                return True

        monitor = EverythingMonitor()
        ctx = IncrementalEvalContext(ground_abc, constraints=[monitor])
        # AB is outside L(A, {B}) but the custom hook claims it
        flips = ctx.apply_delta(ground_abc.parse("AB"), 1)
        assert flips == [(monitor, True)]

    def test_track_after_deltas_counts_existing_state(self, ground_abc):
        ctx = IncrementalEvalContext(ground_abc)
        ctx.apply_delta(ground_abc.parse("AC"), 1)
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        ctx.track(c)
        assert ctx.is_violated(c)

    def test_value_without_materialized_support(self, ground_abc):
        ctx = IncrementalEvalContext(ground_abc)
        ctx.apply_delta(ground_abc.parse("AB"), 2)
        ctx.apply_delta(ground_abc.parse("ABC"), 1)
        assert ctx.value(ground_abc.parse("A")) == 3  # sparse sum path
        assert ctx.support_table()[ground_abc.parse("A")] == 3
        assert ctx("AB") == 3

    def test_rejects_oversized_ground_sets(self):
        big = GroundSet([f"x{i}" for i in range(23)])
        with pytest.raises(ValueError):
            IncrementalEvalContext(big)

    def test_rejects_foreign_masks(self, ground_abc):
        ctx = IncrementalEvalContext(ground_abc)
        with pytest.raises(ValueError):
            ctx.apply_delta(1 << 5, 1)


class TestStreamSession:
    def test_transaction_log_roundtrip(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        session = cset.stream_session()
        log = [
            "# two baskets, then churn",
            "+ AB 2",
            "commit",
            "+ AC",
            "commit",
            "= AC 0",
            "- AB",
            "commit",
        ]
        reports = session.replay(log)
        assert [r.tx for r in reports] == [1, 2, 3]
        assert [len(r.violated) for r in reports] == [1, 2, 1]
        assert session.support("AB") == 1
        assert session.transactions == 3

    def test_set_op_is_resolved_against_live_density(self, ground_abc):
        session = StreamSession(ground_abc)
        session.insert("AB", 3)
        session.apply_ops([("set", ground_abc.parse("AB"), 1)])
        assert session.context.density_value(ground_abc.parse("AB")) == 1
        # set twice within one batch: last write wins
        session.apply_ops(
            [
                ("set", ground_abc.parse("AB"), 5),
                ("set", ground_abc.parse("AB"), 2),
            ]
        )
        assert session.context.density_value(ground_abc.parse("AB")) == 2

    def test_parse_rejects_bad_lines(self, ground_abc):
        with pytest.raises(ValueError):
            parse_transaction_log(ground_abc, ["* AB"])
        with pytest.raises(ValueError):
            parse_transaction_log(ground_abc, ["= AB"])
        with pytest.raises(ValueError):
            parse_transaction_log(ground_abc, ["+ AB -2"])
        with pytest.raises(ValueError):
            parse_transaction_log(ground_abc, ["= AB -3"])

    def test_implicit_final_commit(self, ground_abc):
        batches = parse_transaction_log(ground_abc, ["+ AB", "commit", "+ C"])
        assert len(batches) == 2

    def test_decider_reuses_satisfied_snapshot_across_benign_deltas(
        self, ground_abc
    ):
        """The fingerprint-keyed decider cache is only 'invalidated'
        (i.e. a fresh satisfied-set fingerprint appears) on status
        flips, not on benign deltas."""
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        session = cset.stream_session(private_cache=True)
        session.insert("AB")  # violates B -> C, leaves A -> B satisfied
        ctx = session.context
        target = DifferentialConstraint.parse(ground_abc, "A -> B, C")
        first = ConstraintSet(ground_abc, session.satisfied_constraints())
        assert decide(first, target, method="engine", context=ctx)
        stats_before = ctx.cache.stats()
        session.insert("AB")  # no crossing, no flip
        second = ConstraintSet(ground_abc, session.satisfied_constraints())
        assert decide(second, target, method="engine", context=ctx)
        stats_after = ctx.cache.stats()
        # same fingerprints -> pure cache hits, nothing recomputed
        assert stats_after["misses"] == stats_before["misses"]
        assert stats_after["hits"] > stats_before["hits"]

    def test_basket_session_support_equals_database(self, ground_abc):
        db = BasketDatabase.of(ground_abc, "AB", "AB", "ABC", "C", "BC")
        session = db.stream_session()
        for mask in ground_abc.all_masks():
            assert session.value(mask) == db.support(mask)
        session.insert("BC")
        db2 = db.extended(["BC"])
        for mask in ground_abc.all_masks():
            assert session.value(mask) == db2.support(mask)

    def test_discovery_over_growing_baskets(self, ground_abc):
        db = BasketDatabase.of(ground_abc, "AB", "ABC")
        session = db.stream_session()
        assert zero_set(session) == zero_set(db.support_function())
        assert theory_of(session) == theory_of(db.support_function())
        session.insert("C")
        db2 = db.extended(["C"])
        assert zero_set(session) == zero_set(db2.support_function())
        cover = discover_cover(session)
        assert cover.equivalent_to(discover_cover(db2))


class TestStreamingFDChecker:
    def test_insert_delete_parity_with_relation_checks(self, ground_abc):
        fds = [
            FunctionalDependency.of(ground_abc, "A", "B"),
            FunctionalDependency.of(ground_abc, "B", "C"),
        ]
        chk = StreamingFDChecker(ground_abc, fds)
        rows = [(0, 0, 0), (0, 0, 1), (1, 1, 0), (0, 1, 0)]
        present = []
        for row in rows:
            chk.insert(row)
            present.append(row)
            rel = Relation(ground_abc, present)
            want = {fd for fd in fds if not fd.satisfied_by(rel)}
            assert set(chk.violated_fds()) == want
        while present:
            row = present.pop()
            chk.delete(row)
            rel = Relation(ground_abc, present)
            want = {fd for fd in fds if not fd.satisfied_by(rel)}
            assert set(chk.violated_fds()) == want
        assert len(chk) == 0

    def test_reports_name_the_flipping_fd(self, ground_abc):
        fd = FunctionalDependency.of(ground_abc, "A", "B")
        chk = StreamingFDChecker(ground_abc, [fd])
        chk.insert((0, 0, 0))
        report = chk.insert((0, 1, 0))  # agree on A (and C), differ on B
        assert [chk.fd_of(c) for c in report.newly_violated] == [fd]
        report = chk.delete((0, 1, 0))
        assert [chk.fd_of(c) for c in report.restored] == [fd]

    def test_duplicate_rows_and_to_relation(self, ground_abc):
        fd = FunctionalDependency.of(ground_abc, "A", "B")
        chk = StreamingFDChecker(ground_abc, [fd])
        chk.insert((0, 0, 0))
        chk.insert((0, 0, 0))
        assert len(chk) == 2
        assert not chk.violated_fds()  # identical rows violate nothing
        # Relation has set semantics: the duplicate collapses
        assert len(chk.to_relation()) == 1
        with pytest.raises(ValueError):
            chk.delete((1, 1, 1))

    def test_arity_checked(self, ground_abc):
        chk = StreamingFDChecker(ground_abc, [])
        with pytest.raises(ValueError):
            chk.insert((0, 0))


class TestDegenerateAudit:
    """Engine vs scalar paths on the paper's degenerate corners."""

    EMPTY = GroundSet("")
    SINGLE = GroundSet("A")

    @pytest.mark.parametrize("exact", [True, False])
    def test_empty_ground_set_differentials(self, exact):
        ground = self.EMPTY
        f = SetFunction(ground, [7], exact=exact)
        for members in ([], [0]):
            fam = SetFamily(ground, members)
            batched = differential_function(f, fam)
            scalar = differential_function_by_definition(f, fam)
            assert batched.table() == scalar.table()
        assert f.density().value(0) == 7

    @pytest.mark.parametrize("backend", ["exact", "float"])
    def test_empty_ground_set_streaming(self, backend):
        ground = self.EMPTY
        # the only nontrivial constraint: (/) -> {} with empty family
        c = DifferentialConstraint(ground, 0, SetFamily(ground))
        session = StreamSession(ground, [c], backend=backend)
        report = session.apply([(0, 1)])
        assert report.newly_violated == (c,)
        f = SetFunction.from_density(ground, {0: 1}, exact=backend == "exact")
        assert not c.satisfied_by(f)
        report = session.apply([(0, -1)])
        assert report.restored == (c,)
        density, support, diffs = recompute_tables(
            0, session.context.density_items(), [()], session.context.backend
        )
        assert list(density) == [0] and list(support) == [0]

    @pytest.mark.parametrize("backend", ["exact", "float"])
    def test_singleton_ground_set_parity(self, backend):
        ground = self.SINGLE
        exact = backend == "exact"
        # Remark 3.6's setting: S = {A}; constraint (/) -> {A}
        c = DifferentialConstraint.parse(ground, " -> A")
        ctx = IncrementalEvalContext(ground, constraints=[c], backend=backend)
        ctx.support_table()
        ctx.differential_table(c.family)
        for mask, delta in [(0, 1), (1, 2), (0, -1), (1, -2)]:
            ctx.apply_delta(mask, delta)
            f = SetFunction.from_density(
                ground, dict(ctx.density_items()), exact=exact
            )
            assert ctx.is_violated(c) == (not c.satisfied_by(f))
            want = differential_function_by_definition(f, c.family)
            got = ctx.differential_table(c.family)
            assert list(got) == list(want.table())

    @pytest.mark.parametrize("backend", ["exact", "float"])
    def test_all_zero_density_satisfies_everything(self, backend):
        ground = GroundSet("ABC")
        constraints = [
            DifferentialConstraint.parse(ground, "A -> B"),
            DifferentialConstraint.parse(ground, " -> A, BC"),
            DifferentialConstraint.parse(ground, "AB ->"),
        ]
        ctx = IncrementalEvalContext(
            ground, constraints=constraints, backend=backend
        )
        # churn that cancels back to the zero function
        for mask in ground.all_masks():
            ctx.apply_delta(mask, 2)
        for mask in ground.all_masks():
            ctx.apply_delta(mask, -2)
        assert ctx.violated_constraints() == ()
        assert ctx.zero_set() == frozenset(ground.all_masks())
        zero = SetFunction.zeros(ground, exact=backend == "exact")
        for c in constraints:
            assert c.satisfied_by(zero)
        assert list(ctx.support_table()) == list(zero.table())

    def test_zero_function_theory_is_everything(self):
        ground = GroundSet("AB")
        session = StreamSession(ground)
        theory = theory_of(session)
        # every constraint is implied by the full atomic theory
        target = DifferentialConstraint.parse(ground, "A -> B")
        assert decide(theory, target)
