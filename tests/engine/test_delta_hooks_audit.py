"""Audit regressions: delta hooks on degenerate densities and shards.

Shard routing rebuilds per-shard state from ``density_items()`` and
merges it back, which makes the protocol's edge cases load-bearing:
an entry that an unsharded consumer silently mishandles becomes a
merge mismatch.  The audit found one real divergence, pinned here:

* ``IncrementalEvalContext.density_items()`` / ``value()`` (and hence
  ``support_size``) used the *tolerance-based* nonzero set, silently
  dropping sub-tolerance residues that the live density/support tables
  still carry -- so rebuilding from ``density_items()`` did not
  reproduce ``density_table()``.  Dense ``SetFunction.density_items()``
  yields exactly-nonzero entries, so the incremental context now does
  too; constraint statuses and ``zero_set`` keep the paper's tolerance
  semantics (Definition 3.1) unchanged.

The remaining tests pin the all-zero-density and empty-shard behaviors
that shard routing exercises (cancelling deltas, zero deltas, trivial
and empty families) across ``apply_density_delta`` / ``delta_affects``
implementations.
"""

from fractions import Fraction

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
)
from repro.engine import (
    IncrementalEvalContext,
    ShardedEvalContext,
    recompute_tables,
)
from repro.engine.backends import backend_by_name


@pytest.fixture
def ground() -> GroundSet:
    return GroundSet("ABC")


class TestSubToleranceResidues:
    """The pinned divergence: residues below tol but not exactly zero."""

    def test_exact_residue_survives_density_items(self, ground):
        ctx = IncrementalEvalContext(ground, backend="exact")
        residue = Fraction(1, 10**12)  # far below the 1e-9 tolerance
        ctx.apply_delta(ground.parse("A"), residue)
        assert dict(ctx.density_items()) == {ground.parse("A"): residue}
        assert ctx.support_size() == 1

    def test_exact_residue_value_matches_support_table(self, ground):
        residue = Fraction(1, 10**12)
        lazy = IncrementalEvalContext(ground, backend="exact")
        eager = IncrementalEvalContext(ground, backend="exact")
        eager.support_table()  # maintained table path
        for ctx in (lazy, eager):
            ctx.apply_delta(ground.parse("AB"), residue)
        # the sparse fallback and the table path must agree exactly
        assert lazy.value(0) == eager.value(0) == residue
        assert lazy.value(ground.parse("A")) == residue

    def test_rebuild_from_density_items_reproduces_tables(self, ground):
        """density_items() is a faithful serialization of the state."""
        for backend_name in ("exact", "float"):
            backend = backend_by_name(backend_name)
            ctx = IncrementalEvalContext(ground, backend=backend)
            ctx.apply_delta(ground.parse("A"), 2)
            ctx.apply_delta(
                ground.parse("BC"),
                Fraction(1, 10**12) if backend.exact else 1e-12,
            )
            density, support, _ = recompute_tables(
                ground.size, ctx.density_items(), [], backend
            )
            assert list(density) == list(ctx.density_table())
            assert list(support) == list(ctx.support_table())

    def test_tolerance_semantics_unchanged(self, ground):
        """Constraint statuses and Z(f) keep Definition 3.1's tolerance:
        a sub-tolerance residue violates nothing and stays in Z(f)."""
        c = DifferentialConstraint.parse(ground, "A -> B")
        ctx = IncrementalEvalContext(ground, constraints=[c], backend="exact")
        before = ctx.zero_version
        flips = ctx.apply_delta(ground.parse("AC"), Fraction(1, 10**12))
        assert flips == []
        assert not ctx.is_violated(c)
        assert ctx.zero_version == before  # no zero crossing
        assert ctx.zero_set() == set(range(1 << ground.size))

    def test_residue_crossing_tolerance_flips(self, ground):
        """Growing a residue past tol is one zero crossing, as before."""
        c = DifferentialConstraint.parse(ground, "A -> B")
        ctx = IncrementalEvalContext(ground, constraints=[c], backend="exact")
        mask = ground.parse("AC")
        ctx.apply_delta(mask, Fraction(1, 10**12))
        flips = ctx.apply_delta(mask, 1)
        assert flips == [(c, True)]
        assert ctx.is_violated(c)

    def test_sharded_context_routes_residues(self, ground):
        """Shard dicts keep residues exactly like the merged tables."""
        ctx = ShardedEvalContext(ground, shards=3, backend="exact")
        residue = Fraction(1, 10**12)
        ctx.apply_delta(ground.parse("B"), residue)
        assert sum(ctx.shard_sizes()) == 1
        assert list(ctx.merged_density_table()) == list(ctx.density_table())
        assert dict(ctx.density_items()) == {ground.parse("B"): residue}


class TestAllZeroDensity:
    """Deltas that cancel must leave every representation truly empty."""

    def test_cancelled_deltas_empty_everything(self, ground):
        for backend_name in ("exact", "float"):
            ctx = ShardedEvalContext(ground, shards=2, backend=backend_name)
            ctx.support_table()
            mask = ground.parse("AB")
            ctx.apply_delta(mask, 3)
            ctx.apply_delta(mask, -3)
            assert dict(ctx.density_items()) == {}
            assert ctx.support_size() == 0
            assert ctx.shard_sizes() == (0, 0)
            assert ctx.value(0) == 0
            assert list(ctx.support_table()) == list(
                backend_by_name(backend_name).zeros(1 << ground.size)
            )

    def test_setfunction_hook_cancellation(self, ground):
        f = SetFunction.zeros(ground, exact=True)
        f.density()  # materialize the cache so patching is exercised
        f.apply_density_delta(ground.parse("AB"), 5)
        f.apply_density_delta(ground.parse("AB"), -5)
        assert list(f.table()) == [0] * (1 << ground.size)
        assert list(f.density().table()) == [0] * (1 << ground.size)
        assert dict(f.density_items()) == {}

    def test_sparse_hook_drops_exact_zeros(self, ground):
        f = SparseDensityFunction(ground, {})
        f.apply_density_delta(ground.parse("A"), 2)
        f.apply_density_delta(ground.parse("A"), -2)
        assert f.support_size() == 0
        assert dict(f.density_items()) == {}

    def test_zero_delta_is_a_noop_everywhere(self, ground):
        c = DifferentialConstraint.parse(ground, "A -> B")
        ctx = ShardedEvalContext(ground, constraints=[c], shards=2)
        before = ctx.theory_version
        assert ctx.apply_delta(ground.parse("AC"), 0) == []
        assert ctx.shard_versions == (0, 0)
        assert ctx.theory_version == before
        f = SetFunction.zeros(ground, exact=True)
        f.apply_density_delta(ground.parse("AC"), 0)
        assert list(f.table()) == [0] * 8


class TestDeltaAffectsEdges:
    """delta_affects on the families shard routing can produce."""

    def test_trivial_constraint_is_never_affected(self, ground):
        trivial = DifferentialConstraint(
            ground, ground.parse("AB"), SetFamily(ground, [ground.parse("A")])
        )
        assert trivial.is_trivial
        assert all(
            not trivial.delta_affects(mask) for mask in range(1 << 3)
        )
        ctx = IncrementalEvalContext(ground, constraints=[trivial])
        ctx.apply_delta(ground.parse("AB"), 1)
        assert not ctx.is_violated(trivial)

    def test_empty_family_matches_lattice(self, ground):
        c = DifferentialConstraint(
            ground, ground.parse("A"), SetFamily(ground, [])
        )
        for mask in range(1 << 3):
            assert c.delta_affects(mask) == c.lattice_contains(mask)

    def test_constraint_set_hook_is_the_union(self, ground):
        cset = ConstraintSet.of(ground, "A -> B", "B -> C")
        for mask in range(1 << 3):
            assert cset.delta_affects(mask) == any(
                c.delta_affects(mask) for c in cset
            )

    def test_empty_ground_set_hooks(self):
        empty = GroundSet("")
        ctx = ShardedEvalContext(empty, shards=2)
        ctx.apply_delta(0, 4)
        assert ctx.value(0) == 4
        assert dict(ctx.density_items()) == {0: 4}
        ctx.apply_delta(0, -4)
        assert dict(ctx.density_items()) == {}
