"""The wire protocol: ReproService/ReproClient over real sockets.

Each test boots the asyncio service on an OS-assigned port in a daemon
thread and drives it with the blocking client -- the same pairing the
CI ``service-e2e`` job uses against the spawned binary, minus the
process boundary (which the driver script owns).
"""

from __future__ import annotations

import concurrent.futures
import json

import pytest

from repro.core import ConstraintSet, GroundSet
from repro.engine import (
    ReproClient,
    ReproService,
    ServiceError,
    StreamSession,
)


@pytest.fixture
def ground() -> GroundSet:
    return GroundSet("ABCD")


@pytest.fixture
def cset(ground) -> ConstraintSet:
    return ConstraintSet.of(ground, "A -> B", "B -> CD")


@pytest.fixture
def service(cset):
    handle = ReproService(cset).start_in_thread()
    try:
        yield handle
    finally:
        handle.stop()


class TestWireProtocol:
    def test_health_and_stats(self, service):
        client = service.client()
        health = client.health()
        assert health["status"] == "ok"
        assert health["tracked"] == 2 and health["durable"] is False
        stats = client.stats()
        assert stats["refused"] == 0
        # the resolved engine plan is stamped into /stats
        assert stats["engine"]["tier"] == "incremental"
        assert stats["engine"]["backend"] == "exact"
        assert stats["engine"]["shards"] == 1
        assert stats["engine"]["durable"] is False
        assert stats["engine"]["promotions"] == 0

    def test_boot_from_one_engine_config(self, cset):
        from repro.engine import EngineConfig

        handle = ReproService(
            cset,
            config=EngineConfig(engine="incremental", backend="float"),
        ).start_in_thread()
        try:
            stats = handle.client().stats()
            assert stats["engine"]["tier"] == "incremental"
            assert stats["engine"]["backend"] == "float"
        finally:
            handle.stop()

    def test_implies_matches_direct_decision(self, service, cset):
        client = service.client()
        for text in ("A -> CD", "C -> A", "AB -> CD", "A -> D"):
            assert client.implies(text) == cset.implies(text), text

    def test_concurrent_duplicates_coalesce(self, service):
        client = service.client()
        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            answers = list(
                pool.map(lambda _: client.implies("A -> D"), range(16))
            )
        assert answers == [True] * 16
        stats = client.stats()
        # 16 identical questions cannot have cost 16 computations
        assert stats["computed"] < stats["requests"]

    def test_delta_check_probe_cycle(self, service):
        client = service.client()
        report = client.delta(["+ AB 3", "+ ABC"])
        assert report["tx"] == 1
        assert report["newly_violated"] == ["B -> {CD}"]
        assert client.probe("A") == 4
        assert client.probe("AB") == 4
        assert client.check("A -> B") is True
        report = client.delta(["+ A"])
        assert "A -> {B}" in report["newly_violated"]
        assert client.check("A -> B") is False
        report = client.delta(["- A"])
        assert "A -> {B}" in report["restored"]
        assert client.check("A -> B") is True
        assert client.health()["transactions"] == 3

    def test_delta_string_form_and_set_ops(self, service):
        client = service.client()
        client.delta("+ CD 2")
        client.delta("= CD 5")
        assert client.probe("CD") == 5

    def test_bad_requests_are_400(self, service):
        client = service.client()
        for call in (
            lambda: client.implies("A -> Z9"),       # unknown element
            lambda: client.probe("Z"),               # unknown element
            lambda: client.delta(["nonsense line"]),  # bad op syntax
            lambda: client.delta(["+ A", "commit", "+ B", "commit"]),
            lambda: client._request("POST", "/implies", {"constraint": 7}),
            lambda: client._request("POST", "/probe", {}),
            lambda: client.snapshot(),               # not durable
        ):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 400

    def test_unknown_paths_and_methods(self, service):
        client = service.client()
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/nope", {})
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/implies")
        assert err.value.status == 405

    def test_malformed_http_is_rejected(self, service):
        import socket

        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as sock:
            sock.sendall(b"THIS IS NOT HTTP\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_non_dict_json_body_is_rejected(self, service):
        import http.client

        conn = http.client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/implies", body=json.dumps([1, 2]).encode(),
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestBackpressure:
    def test_queue_bound_refuses_with_503(self, cset):
        # queue_size=1 and a slow lock-holding delta: the second delta
        # must wait on the write lock while further arrivals are refused
        handle = ReproService(cset, queue_size=1).start_in_thread()
        try:
            client = handle.client()
            with concurrent.futures.ThreadPoolExecutor(6) as pool:
                futures = [
                    pool.submit(client.delta, ["+ AB"]) for _ in range(6)
                ]
                outcomes = []
                for future in futures:
                    try:
                        future.result()
                        outcomes.append("ok")
                    except ServiceError as err:
                        assert err.status == 503
                        outcomes.append("refused")
            assert "ok" in outcomes  # the admitted ones committed
            refused = handle.client().stats()["refused"]
            assert refused == outcomes.count("refused")
        finally:
            handle.stop()


class TestDurableService:
    def test_restart_recovers_and_snapshot_endpoint_works(
        self, cset, tmp_path
    ):
        data = str(tmp_path / "svc")

        def boot():
            session = StreamSession(
                cset.ground, constraints=cset.constraints,
                durable=data, snapshot_every=3,
            )
            return ReproService(cset, session=session).start_in_thread()

        handle = boot()
        client = handle.client()
        for _ in range(4):
            client.delta(["+ AB"])
        client.delta(["+ A"])
        pre = (
            client.health()["transactions"],
            client.probe("AB"),
            client.check("A -> B"),
        )
        snap = client.snapshot()
        assert snap["tx"] == 5
        handle.stop()  # graceful: drains + snapshots + closes the store

        handle2 = boot()
        try:
            client2 = handle2.client()
            post = (
                client2.health()["transactions"],
                client2.probe("AB"),
                client2.check("A -> B"),
            )
            assert post == pre
        finally:
            handle2.stop()

    def test_graceful_stop_snapshots_unsnapshotted_tail(self, cset, tmp_path):
        data = str(tmp_path / "svc")
        session = StreamSession(
            cset.ground, constraints=cset.constraints, durable=data
        )
        handle = ReproService(cset, session=session).start_in_thread()
        handle.client().delta(["+ ABCD 2"])
        handle.stop()
        from repro.engine import DurableStore

        recovered = DurableStore(data).recover()
        # the drain snapshotted tx 1, so the WAL is compacted away
        assert recovered.snapshot["tx"] == 1 and recovered.tail == []


class TestClientErrors:
    def test_connection_refused_is_wrapped(self):
        client = ReproClient("127.0.0.1", 9, timeout=0.5)
        with pytest.raises(ServiceError, match="failed"):
            client.health()

    def test_wait_ready_times_out(self):
        client = ReproClient("127.0.0.1", 9, timeout=0.2)
        with pytest.raises(ServiceError, match="not ready"):
            client.wait_ready(timeout=0.5, interval=0.1)


class TestStartupAndProtocolEdges:
    def test_bind_failure_surfaces_promptly(self, cset):
        import socket
        import time

        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            taken = holder.getsockname()[1]
            t0 = time.monotonic()
            with pytest.raises(ServiceError, match="failed to start"):
                ReproService(cset, port=taken).start_in_thread()
            assert time.monotonic() - t0 < 10  # not the full 30s wait

    def test_short_body_is_400_not_a_task_crash(self, service):
        import socket

        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /implies HTTP/1.1\r\n"
                b"Content-Length: 50\r\n\r\n"
                b"{\"short\""  # fewer than 50 bytes, then FIN
            )
            sock.shutdown(socket.SHUT_WR)
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]
        # the service is still healthy afterwards
        assert service.client().health()["status"] == "ok"

    def test_wedged_session_still_drains_and_closes(self, cset, tmp_path):
        """A failed /delta apply wedges the session; shutdown must still
        drain cleanly (the WAL is authoritative, reopening heals)."""
        from repro.engine import IncrementalEvalContext

        data = str(tmp_path / "svc")
        session = StreamSession(
            cset.ground, constraints=cset.constraints, durable=data
        )
        handle = ReproService(cset, session=session).start_in_thread()
        client = handle.client()
        client.delta(["+ AB"])
        original = IncrementalEvalContext.apply_batch
        IncrementalEvalContext.apply_batch = lambda self, deltas: (_ for _ in ()).throw(
            RuntimeError("simulated executor death")
        )
        try:
            with pytest.raises(ServiceError) as err:
                client.delta(["+ CD"])
            assert err.value.status == 500
        finally:
            IncrementalEvalContext.apply_batch = original
        handle.stop()  # must not raise despite the wedged session
        from repro.engine import DurableStore

        recovered = DurableStore(data).recover()
        assert recovered.tx == 2  # the logged record survived the drain


class TestStartupTimeout:
    def test_timeout_reports_actual_elapsed_time(self, cset, monkeypatch):
        import asyncio
        import time

        async def never_ready(self, install_signal_handlers=True):
            await asyncio.sleep(5)

        monkeypatch.setattr(ReproService, "run", never_ready)
        started = time.monotonic()
        with pytest.raises(
            ServiceError, match=r"ready after \d+\.\d+s \(timeout 0\.3s\)"
        ) as err:
            ReproService(cset).start_in_thread(timeout=0.3)
        elapsed = time.monotonic() - started
        assert elapsed < 3  # honored the 0.3s deadline, not the 30s default
        # the message reports measured wall time, not the wait-quantum sum
        import re

        reported = float(re.search(r"after (\d+\.\d+)s", str(err.value)).group(1))
        assert 0.3 <= reported <= elapsed + 0.01


class TestOverloadRetry:
    """The client's bounded-retry contract against the server's own
    503 backpressure refusals: idempotent requests (GET and the
    read-only POSTs) retry with jittered backoff; a /delta never does.
    The queue is forced full by pinning the admission counter -- the
    refusal path never touches it, so unpinning it is race-free."""

    def _wedge(self, handle):
        service = handle.service
        service._inflight = service._queue_size
        return service

    def test_idempotent_request_retries_until_admitted(self, service):
        import random
        import threading

        wedged = self._wedge(service)
        timer = threading.Timer(
            0.15, lambda: setattr(wedged, "_inflight", 0)
        )
        timer.start()
        try:
            client = service.client(
                retries=8, backoff=0.05, rng=random.Random(7)
            )
            assert client.probe("AB") == 0  # succeeded after refusals
        finally:
            timer.cancel()
            wedged._inflight = 0
        assert wedged._refused > 0  # it really was refused first

    def test_exhausted_retries_surface_the_503(self, service):
        import random

        wedged = self._wedge(service)
        before = wedged._refused
        try:
            client = service.client(
                retries=2, backoff=0.01, rng=random.Random(7)
            )
            with pytest.raises(ServiceError) as err:
                client.implies("A -> B")
            assert err.value.status == 503
        finally:
            wedged._inflight = 0
        assert wedged._refused == before + 3  # one try + two retries

    def test_delta_is_never_retried(self, service):
        wedged = self._wedge(service)
        before = wedged._refused
        try:
            client = service.client(retries=8, backoff=0.01)
            with pytest.raises(ServiceError) as err:
                client.delta(["+ AB"])
            assert err.value.status == 503
        finally:
            wedged._inflight = 0
        # exactly one wire attempt: replaying a transaction that might
        # have been applied would double-commit it
        assert wedged._refused == before + 1

    def test_stats_surface_the_calibration_state(self, service):
        stats = service.client().stats()
        assert stats["engine"]["calibration"] == {"enabled": False}
