"""Micro-tests pinning the masked nonzero helpers on edge cases.

``any_nonzero_where`` / ``first_nonzero_where`` back the violation
checks (density scanned under a lattice mask), so their edge behaviour
-- empty masks, masked-out hits, the strict ``|v| > tol`` boundary,
negative entries -- is pinned here for all three backends.  The float
backend's ``first_nonzero_where`` gathers the masked entries before
taking ``|.|`` (it must never materialize a full ``2^n`` temp); these
tests pin that its answers agree with the naive scalar definition so
the gather-first form can't drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.backends import backend_by_name

BACKENDS = ["exact", "exact-vec", "float"]


def make_table(backend_name, values):
    backend = backend_by_name(backend_name)
    table = backend.zeros(len(values))
    for i, v in enumerate(values):
        if v:
            table[i] = v
    return backend, table


def where_mask(size, true_at):
    where = np.zeros(size, dtype=bool)
    for i in true_at:
        where[i] = True
    return where


def oracle_first(values, where, tol):
    hits = [i for i in range(len(values)) if where[i] and abs(values[i]) > tol]
    return hits[0] if hits else None


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestMaskedNonzeroHelpers:
    def test_all_false_mask(self, backend_name):
        backend, table = make_table(backend_name, [1, 2, 3, 4])
        where = where_mask(4, [])
        assert backend.any_nonzero_where(table, where, 0.0) is False
        assert backend.first_nonzero_where(table, where, 0.0) is None

    def test_mask_selects_only_zeros(self, backend_name):
        backend, table = make_table(backend_name, [5, 0, 0, 5])
        where = where_mask(4, [1, 2])
        assert backend.any_nonzero_where(table, where, 0.0) is False
        assert backend.first_nonzero_where(table, where, 0.0) is None

    def test_first_hit_respects_mask_not_global_order(self, backend_name):
        # index 1 is nonzero but masked out; the first *masked* hit is 5
        backend, table = make_table(backend_name, [0, 9, 0, 0, 0, 7, 0, 2])
        where = where_mask(8, [0, 3, 5, 7])
        assert backend.any_nonzero_where(table, where, 0.0) is True
        assert backend.first_nonzero_where(table, where, 0.0) == 5

    def test_tolerance_boundary_is_strict(self, backend_name):
        # |v| > tol, not >=: entries exactly at tol are not hits
        backend, table = make_table(backend_name, [0, 2, 0, 3])
        where = where_mask(4, [1, 3])
        assert backend.any_nonzero_where(table, where, 2.0) is True
        assert backend.first_nonzero_where(table, where, 2.0) == 3
        assert backend.any_nonzero_where(table, where, 3.0) is False
        assert backend.first_nonzero_where(table, where, 3.0) is None

    def test_negative_entries_hit_through_abs(self, backend_name):
        backend, table = make_table(backend_name, [0, 0, -4, 0])
        where = where_mask(4, [2, 3])
        assert backend.any_nonzero_where(table, where, 0.0) is True
        assert backend.any_nonzero_where(table, where, 3.0) is True
        assert backend.first_nonzero_where(table, where, 3.0) == 2
        assert backend.any_nonzero_where(table, where, 4.0) is False

    def test_hit_at_last_masked_index(self, backend_name):
        backend, table = make_table(backend_name, [0] * 7 + [1])
        where = where_mask(8, [0, 7])
        assert backend.first_nonzero_where(table, where, 0.0) == 7

    def test_single_entry_table(self, backend_name):
        backend, table = make_table(backend_name, [3])
        assert backend.first_nonzero_where(table, where_mask(1, [0]), 0.0) == 0
        assert backend.first_nonzero_where(table, where_mask(1, []), 0.0) is None
        assert backend.any_nonzero_where(table, where_mask(1, []), 0.0) is False

    def test_matches_scalar_oracle_on_sparse_mask(self, backend_name):
        # a larger table with a sparse mask -- the shape the violation
        # scan actually sees (lattice masks select few of 2^n entries)
        values = [0] * 64
        for i, v in [(3, 1), (17, -2), (40, 3), (41, 0), (63, -1)]:
            values[i] = v
        backend, table = make_table(backend_name, values)
        for true_at in ([], [41], [17, 41], [40, 63], list(range(0, 64, 7))):
            where = where_mask(64, true_at)
            for tol in (0.0, 1.0, 2.5):
                want = oracle_first(values, where, tol)
                assert backend.first_nonzero_where(table, where, tol) == want
                assert backend.any_nonzero_where(table, where, tol) == (
                    want is not None
                )
