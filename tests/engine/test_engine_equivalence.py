"""Property tests: the batched engine agrees with the scalar paths.

The engine's whole-table evaluation (masked zeta transforms, boolean
lattice tables, the memoized decider) must be *indistinguishable* from
the paper-facing scalar definitions -- identical values on the exact
backend, ``allclose`` on the float backend -- on randomized instances.
"""

import random

import numpy as np
import pytest

from repro.core import (
    ConstraintSet,
    GroundSet,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
    differential_function,
    differential_function_by_definition,
    differential_value,
    differential_via_density,
    find_uncovered,
    implies_lattice,
)
from repro.core.implication import find_uncovered_engine, implies_engine
from repro.core.lattice import in_lattice
from repro.engine import (
    EXACT,
    FLOAT,
    EvalContext,
    ImplicationCache,
    backend_by_name,
    batched_differential,
    blocked_table,
    lattice_table,
)
from repro.instances import (
    random_constraint,
    random_constraint_set,
    random_family,
    random_set_function,
)


@pytest.fixture
def ground_6() -> GroundSet:
    return GroundSet("ABCDEF")


class TestBatchedDifferential:
    def test_float_matches_scalar_definition(self, ground_6, rng):
        for _ in range(25):
            f = random_set_function(rng, ground_6)
            fam = random_family(rng, ground_6, max_members=3)
            table = batched_differential(f, fam)
            for x in ground_6.all_masks():
                assert table[x] == pytest.approx(
                    differential_value(f, fam, x)
                )

    def test_exact_matches_scalar_identically(self, ground_6, rng):
        for _ in range(25):
            values = [rng.randint(-9, 9) for _ in range(64)]
            f = SetFunction(ground_6, values, exact=True)
            fam = random_family(rng, ground_6, max_members=3)
            table = batched_differential(f, fam)
            for x in ground_6.all_masks():
                want = differential_value(f, fam, x)
                assert table[x] == want
                assert isinstance(table[x], int)

    def test_differential_function_matches_definition_loop(
        self, ground_6, rng
    ):
        for exact in (False, True):
            for _ in range(10):
                if exact:
                    f = SetFunction(
                        ground_6,
                        [rng.randint(-5, 5) for _ in range(64)],
                        exact=True,
                    )
                else:
                    f = random_set_function(rng, ground_6)
                fam = random_family(rng, ground_6, max_members=3)
                batched = differential_function(f, fam)
                oracle = differential_function_by_definition(f, fam)
                assert batched.exact == oracle.exact == exact
                assert batched.allclose(oracle)
                if exact:
                    assert batched.table() == oracle.table()

    def test_sparse_input_uses_density_sum_path(self, ground_6, rng):
        for _ in range(25):
            density = {
                rng.randrange(64): rng.randint(1, 5)
                for _ in range(rng.randint(1, 8))
            }
            f = SparseDensityFunction(ground_6, density)
            fam = random_family(rng, ground_6, max_members=3)
            batched = differential_function(f, fam)
            for x in ground_6.all_masks():
                assert batched.value(x) == differential_via_density(f, fam, x)
                assert batched.value(x) == differential_value(f, fam, x)

    def test_context_forces_backend(self, ground_6, rng):
        f = random_set_function(rng, ground_6)
        fam = random_family(rng, ground_6, max_members=2)
        forced = differential_function(f, fam, context=EvalContext("exact"))
        assert forced.exact
        inherit = differential_function(f, fam)
        assert not inherit.exact
        assert forced.allclose(inherit)


class TestLatticeTables:
    def test_blocked_table_matches_family_membership(self, ground_6, rng):
        for _ in range(40):
            fam = random_family(
                rng, ground_6, max_members=3, allow_empty_member=True
            )
            table = blocked_table(ground_6.size, fam.members)
            for u in ground_6.all_masks():
                assert bool(table[u]) == fam.contains_subset_of(u)

    def test_lattice_table_matches_closed_form(self, ground_6, rng):
        for _ in range(40):
            fam = random_family(rng, ground_6, max_members=3)
            lhs = rng.randrange(64)
            table = lattice_table(ground_6.size, lhs, fam.members)
            for u in ground_6.all_masks():
                assert bool(table[u]) == in_lattice(lhs, fam, u)


class TestEngineDecider:
    def test_agrees_with_scalar_lattice_decider(self, ground_6, rng):
        for _ in range(200):
            cs = random_constraint_set(
                rng, ground_6, rng.randint(0, 4), max_members=3,
                allow_empty_member=True,
            )
            t = random_constraint(
                rng, ground_6, max_members=3, allow_empty_member=True
            )
            assert implies_engine(cs, t) == implies_lattice(cs, t)
            assert find_uncovered_engine(cs, t) == find_uncovered(cs, t)

    def test_cache_hits_across_equal_sets(self, ground_6):
        cache = ImplicationCache()
        ctx = EvalContext(cache=cache)
        cs1 = ConstraintSet.of(ground_6, "A -> B", "B -> C")
        cs2 = ConstraintSet.of(ground_6, "B -> C", "A -> B")  # equal, reordered
        t = random_constraint(random.Random(7), ground_6, max_members=2)
        implies_engine(cs1, t, context=ctx)
        misses_before = cache.stats()["misses"]
        implies_engine(cs2, t, context=ctx)
        assert cache.stats()["misses"] == misses_before
        assert cache.stats()["hits"] > 0

    def test_private_cache_is_isolated(self, ground_6):
        ctx = EvalContext(private_cache=True)
        cs = ConstraintSet.of(ground_6, "A -> B")
        t = random_constraint(random.Random(3), ground_6, max_members=2)
        implies_engine(cs, t, context=ctx)
        assert ctx.cache.stats()["set_tables"] == 1

    def test_refuses_non_dense_ground_sets(self):
        from repro.errors import NotApplicableError

        big = GroundSet([f"x{i}" for i in range(30)])
        cs = ConstraintSet.of(big, "x0 -> x1")
        t = ConstraintSet.of(big, "x0 -> x2").constraints[0]
        with pytest.raises(NotApplicableError):
            implies_engine(cs, t)


class TestBackends:
    def test_backend_by_name(self):
        from repro.engine import VEC_EXACT

        assert backend_by_name("exact") is EXACT
        assert backend_by_name("exact-vec") is VEC_EXACT
        assert backend_by_name("float") is FLOAT
        with pytest.raises(ValueError):
            backend_by_name("decimal")

    def test_exact_copy_semantics(self):
        """Copy never aliases its source and preserves exact values.

        Pins the cleaned-up ndarray round trip: ``.tolist()`` hands
        back python scalars directly (no second list comprehension).
        """
        from fractions import Fraction

        src = [1, Fraction(2, 3), -5, 0]
        copied = EXACT.copy(src)
        assert copied == src and copied is not src
        copied[0] = 99
        assert src[0] == 1  # no aliasing
        assert copied[1] is src[1]  # Fractions carried through, not coerced
        assert type(copied[1]) is Fraction

        arr = np.array([1.0, -2.0, 0.5, 0.0])
        from_arr = EXACT.copy(arr)
        assert isinstance(from_arr, list)
        assert from_arr == [1.0, -2.0, 0.5, 0.0]
        assert all(type(v) is float for v in from_arr)
        from_arr[0] = 7.0
        assert arr[0] == 1.0  # fresh storage, not a view

    def test_exact_masked_helpers_return_python_ints(self):
        """Pins the flatnonzero cleanup: indices come back as python
        ints (one ``.tolist()``), not boxed numpy scalars."""
        values = [0, 3, 0, -2]
        where = np.array([True, True, True, True])
        hit = EXACT.first_nonzero_where(values, where, 0.0)
        assert hit == 1 and type(hit) is int
        assert EXACT.any_nonzero_where(values, where, 0.0) is True
        EXACT.zero_where(values, np.array([False, True, False, False]))
        assert values == [0, 0, 0, -2]

    def test_exact_scatter_preserves_ints(self):
        table = EXACT.scatter(8, [(3, 2), (3, 1), (5, -4)])
        assert table == [0, 0, 0, 3, 0, -4, 0, 0]
        assert all(isinstance(v, int) for v in table)

    def test_float_zeta_agrees_with_exact(self, rng):
        values = [rng.randint(-9, 9) for _ in range(32)]
        exact = EXACT.copy(values)
        floats = FLOAT.copy(values)
        EXACT.superset_zeta_inplace(exact)
        FLOAT.superset_zeta_inplace(floats)
        assert np.allclose(floats, exact)

    def test_roundtrip_both_backends(self, rng):
        values = [rng.randint(-9, 9) for _ in range(64)]
        for backend in (EXACT, FLOAT):
            table = backend.copy(values)
            backend.superset_mobius_inplace(table)
            backend.superset_zeta_inplace(table)
            assert np.allclose(np.asarray(table, dtype=float), values)


class TestSatisfactionEquivalence:
    def test_dense_engine_check_matches_itemwise(self, ground_6, rng):
        # constraint.satisfied_by routes dense functions through the
        # engine; replicate the old itemwise loop as the oracle
        for _ in range(60):
            f = random_set_function(rng, ground_6)
            c = random_constraint(rng, ground_6, max_members=3)
            itemwise = True
            for mask, value in f.density_items():
                if abs(value) > 1e-9 and c.lattice_contains(mask):
                    itemwise = False
                    break
            assert c.satisfied_by(f) == itemwise
