"""Unit tests for the sharded evaluation subsystem.

The property suite (tests/properties/test_shard_equivalence.py) carries
the exhaustive merge-equivalence guarantees; these tests pin the
mechanics: plan routing, dirty-shard versioning, empty shards, the
executor's pinning/caching/fallback behavior, and pickling exact tables
across real worker processes.
"""

from fractions import Fraction

import pytest

from repro.core import ConstraintSet, GroundSet
from repro.engine import (
    EvalRequest,
    IncrementalEvalContext,
    ParallelExecutor,
    ShardPlan,
    ShardedEvalContext,
    default_workers,
    sum_tables,
)
from repro.engine.backends import EXACT, FLOAT


@pytest.fixture
def ground() -> GroundSet:
    return GroundSet("ABCD")


@pytest.fixture
def cset(ground) -> ConstraintSet:
    return ConstraintSet.of(ground, "A -> B", "B -> C, D")


class TestShardPlan:
    def test_routing_is_deterministic_and_in_range(self):
        plan = ShardPlan(3)
        for mask in range(64):
            k = plan.shard_of(mask)
            assert 0 <= k < 3
            assert plan.shard_of(mask) == k

    def test_partition_density_covers_every_entry_once(self):
        plan = ShardPlan(3)
        density = {m: m + 1 for m in range(16)}
        parts = plan.partition_density(density)
        assert len(parts) == 3
        merged = {}
        for part in parts:
            for mask, value in part.items():
                assert mask not in merged  # disjoint supports
                merged[mask] = value
        assert merged == density

    def test_partition_rows_preserves_multiplicity(self):
        plan = ShardPlan(2)
        rows = [3, 3, 5, 7, 3]
        parts = plan.partition_rows(rows)
        assert sorted(parts[0] + parts[1]) == sorted(rows)
        # all copies of one mask land on one shard
        assert all(3 not in part or part.count(3) == 3 for part in parts)

    def test_custom_route_and_empty_shards(self):
        plan = ShardPlan(4, route=lambda mask: 0)
        parts = plan.partition_density({1: 1, 2: 2})
        assert parts[0] == {1: 1, 2: 2}
        assert parts[1] == parts[2] == parts[3] == {}

    def test_bad_route_rejected(self):
        plan = ShardPlan(2, route=lambda mask: 5)
        with pytest.raises(ValueError):
            plan.shard_of(0)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(0)


class TestSumTables:
    def test_exact_elementwise(self):
        assert sum_tables([[1, 2], [3, 4], [0, -4]], EXACT) == [4, 2]

    def test_float_vectorized(self):
        out = sum_tables([FLOAT.copy([1, 2]), FLOAT.copy([3, 4])], FLOAT)
        assert list(out) == [4.0, 6.0]

    def test_fractions_survive(self):
        out = sum_tables([[Fraction(1, 3)], [Fraction(1, 6)]], EXACT)
        assert out == [Fraction(1, 2)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sum_tables([], EXACT)

    def test_inputs_not_mutated(self):
        first = [1, 2]
        sum_tables([first, [3, 4]], EXACT)
        assert first == [1, 2]


class TestShardedEvalContext:
    def test_deltas_dirty_exactly_the_owning_shard(self, ground, cset):
        ctx = ShardedEvalContext(ground, constraints=cset.constraints, shards=3)
        before = ctx.shard_versions
        mask = ground.parse("AB")
        ctx.apply_delta(mask, 1)
        owner = ctx.plan.shard_of(mask)
        after = ctx.shard_versions
        assert after[owner] == before[owner] + 1
        assert all(
            after[k] == before[k] for k in range(3) if k != owner
        )

    def test_zero_delta_does_not_dirty(self, ground):
        ctx = ShardedEvalContext(ground, shards=2)
        ctx.apply_delta(1, 0)
        assert ctx.shard_versions == (0, 0)
        assert ctx.shard_sizes() == (0, 0)

    def test_cancelled_entry_leaves_shard_density(self, ground):
        ctx = ShardedEvalContext(ground, shards=2)
        ctx.apply_delta(3, 2)
        ctx.apply_delta(3, -2)
        assert ctx.shard_sizes() == (0, 0)
        assert list(ctx.merged_density_table()) == [0] * 16

    def test_more_shards_than_masks(self):
        small = GroundSet("A")
        ctx = ShardedEvalContext(small, shards=7, density={1: 2})
        assert sum(ctx.shard_sizes()) == 1
        assert list(ctx.merged_support_table()) == [2, 2]

    def test_empty_ground_set(self):
        ctx = ShardedEvalContext(GroundSet(""), shards=3, density={0: 5})
        assert list(ctx.merged_density_table()) == [5]
        assert ctx.value(0) == 5

    def test_seed_density_is_partitioned(self, ground, cset):
        density = {ground.parse("AB"): 2, ground.parse("ACD"): 1}
        ctx = ShardedEvalContext(
            ground, density=density, constraints=cset.constraints, shards=2
        )
        merged = {}
        for k in range(2):
            merged.update(dict(ctx.shard_density_items(k)))
        assert merged == density
        # seeding is not a stream event (mirrors the incremental engine)
        assert ctx.theory_version == 0 and ctx.zero_version == 0

    def test_violation_tracking_matches_unsharded(self, ground, cset):
        sharded = ShardedEvalContext(
            ground, constraints=cset.constraints, shards=3
        )
        plain = IncrementalEvalContext(ground, constraints=cset.constraints)
        for mask, delta in [(3, 1), (5, 2), (5, -2), (12, 1)]:
            assert sharded.apply_delta(mask, delta) == plain.apply_delta(
                mask, delta
            )
        assert sharded.violated_constraints() == plain.violated_constraints()

    def test_float_backend_merges_exactly_on_integer_deltas(self, ground):
        ctx = ShardedEvalContext(ground, shards=3, backend="float")
        for mask in range(16):
            ctx.apply_delta(mask, mask % 3 - 1)
        assert list(ctx.merged_density_table()) == list(ctx.density_table())
        assert list(ctx.merged_support_table()) == list(ctx.support_table())

    def test_evaluate_defaults_to_tracked_constraints(self, ground, cset):
        ctx = ShardedEvalContext(
            ground, constraints=cset.constraints, shards=2
        )
        ctx.apply_delta(ground.parse("AC"), 1)  # violates A -> B
        result = ctx.evaluate(probes=["A"])
        assert result.violated == tuple(
            ctx.is_violated(c) for c in ctx.constraints
        )
        assert result.support[ground.parse("A")] == ctx.value(
            ground.parse("A")
        )

    def test_evaluate_label_probes_and_tables(self, ground, cset):
        fam = cset.constraints[1].family
        ctx = ShardedEvalContext(ground, constraints=cset.constraints, shards=2)
        ctx.apply_delta(ground.parse("ABD"), 3)
        result = ctx.evaluate(
            probes=["AB", ""], families=[fam], return_tables=True
        )
        assert list(result.density_table) == list(ctx.density_table())
        assert list(result.support_table) == list(ctx.support_table())
        want = ctx.differential_table(fam)
        assert list(result.differential_tables[tuple(fam.members)]) == list(want)

    def test_sync_only_ships_dirty_shards(self, ground):
        ctx = ShardedEvalContext(ground, shards=3)
        ctx.apply_delta(1, 1)
        first = ctx.sync_executor()
        assert set(first) == set(range(3))  # initial sync ships everyone
        assert ctx.sync_executor() == ()  # clean: nothing to ship
        ctx.apply_delta(1, 1)
        again = ctx.sync_executor()
        assert again == (ctx.plan.shard_of(1),)


class TestParallelExecutor:
    def test_default_workers_sane(self):
        assert default_workers() >= 1
        assert default_workers(shards=1) == 1
        assert default_workers(shards=10**6) >= 1

    def test_single_worker_is_inline(self):
        ex = ParallelExecutor(workers=1)
        assert ex.inline
        assert ParallelExecutor(workers=2).inline is False

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_inline_executors_are_isolated(self):
        a, b = ParallelExecutor(workers=1), ParallelExecutor(workers=1)
        a.load_density(0, 0, [(1, 1)])
        b.load_density(0, 0, [(1, 7)])
        req = EvalRequest(
            shard_id=0, version=0, n=2, backend="exact", tol=1e-9,
            constraints=(), probes=(0,), families=(), return_tables=False,
        )
        assert a.evaluate([req])[0].probes == (1,)
        assert b.evaluate([req])[0].probes == (7,)

    def test_stale_version_is_an_error(self):
        ex = ParallelExecutor(workers=1)
        ex.load_density(0, 3, [(0, 1)])
        req = EvalRequest(
            shard_id=0, version=4, n=1, backend="exact", tol=1e-9,
            constraints=(), probes=(), families=(), return_tables=False,
        )
        with pytest.raises(RuntimeError, match="sync before evaluating"):
            ex.evaluate([req])

    def test_rows_payload_aggregates_to_density(self):
        ex = ParallelExecutor(workers=1)
        ex.load_rows(0, 0, [3, 3, 1])
        req = EvalRequest(
            shard_id=0, version=0, n=2, backend="exact", tol=1e-9,
            constraints=(), probes=(3, 1, 0), families=(),
            return_tables=True,
        )
        answer = ex.evaluate([req])[0]
        assert answer.nnz == 2
        assert answer.probes == (2, 3, 3)  # supports of {AB}, {A}, {}
        assert answer.density_table == [0, 1, 0, 2]

    def test_process_pool_roundtrips_exact_fractions(self, ground, cset):
        with ParallelExecutor(workers=2) as ex:
            ctx = ShardedEvalContext(
                ground,
                constraints=cset.constraints,
                shards=4,
                executor=ex,
            )
            ctx.apply_delta(ground.parse("AB"), Fraction(1, 3))
            ctx.apply_delta(ground.parse("CD"), Fraction(2, 3))
            result = ctx.evaluate(probes=["", "C"], return_tables=True)
            assert result.support[0] == Fraction(1, 1)
            assert list(result.density_table) == list(ctx.density_table())
            assert result.violated == tuple(
                ctx.is_violated(c) for c in ctx.constraints
            )

    def test_pool_reuses_cached_tables_per_version(self, ground):
        with ParallelExecutor(workers=2) as ex:
            ctx = ShardedEvalContext(ground, shards=2, executor=ex)
            ctx.apply_delta(1, 1)
            first = ctx.evaluate(probes=[""])
            second = ctx.evaluate(probes=[""])  # no dirty shards
            assert first.support == second.support
            ctx.apply_delta(2, 1)
            third = ctx.evaluate(probes=[""])
            assert third.support[0] == 2

    def test_shutdown_then_use_raises(self):
        ex = ParallelExecutor(workers=2)
        ex.shutdown()
        with pytest.raises(RuntimeError):
            ex.load_density(0, 0, [])

    def test_clear_drops_state(self):
        ex = ParallelExecutor(workers=1)
        ex.load_density(0, 0, [(0, 1)])
        epoch = ex.epoch
        ex.clear()
        assert ex.epoch == epoch + 1
        req = EvalRequest(
            shard_id=0, version=0, n=1, backend="exact", tol=1e-9,
            constraints=(), probes=(), families=(), return_tables=False,
        )
        with pytest.raises(RuntimeError):
            ex.evaluate([req])

    def test_clear_is_scoped_to_one_executor(self):
        a, b = ParallelExecutor(workers=1), ParallelExecutor(workers=1)
        a.load_density(0, 0, [(0, 1)])
        b.load_density(0, 0, [(0, 2)])
        a.clear()
        req = EvalRequest(
            shard_id=0, version=0, n=1, backend="exact", tol=1e-9,
            constraints=(), probes=(0,), families=(), return_tables=False,
        )
        assert b.evaluate([req])[0].probes == (2,)

    def test_context_resyncs_after_executor_clear(self, ground):
        """clear() must not strand attached contexts: the epoch bump
        voids their sync bookkeeping, so the next fan-out reships."""
        ctx = ShardedEvalContext(ground, density={3: 2}, shards=2)
        assert ctx.evaluate(probes=[0]).support[0] == 2
        ctx.executor.clear()
        assert ctx.evaluate(probes=[0]).support[0] == 2

    def test_shutdown_reclaims_inline_state(self):
        from repro.engine import parallel as par

        ex = ParallelExecutor(workers=1)
        ex.load_density(0, 0, [(0, 1)])
        ns = ex._ns
        assert any(key[0] == ns for key in par._SHARD_DATA)
        ex.shutdown()
        assert not any(key[0] == ns for key in par._SHARD_DATA)
        assert not any(key[0] == ns for key in par._TABLE_CACHE)

    def test_contexts_sharing_one_executor_are_isolated(self, ground):
        """Two contexts on one executor must never serve each other's
        tables, even with identical shard ids and version counters."""
        ex = ParallelExecutor(workers=1)
        ctx1 = ShardedEvalContext(ground, density={1: 5}, shards=2, executor=ex)
        ctx2 = ShardedEvalContext(ground, density={1: 7}, shards=2, executor=ex)
        assert ctx1.shard_versions == ctx2.shard_versions  # colliding keys
        assert ctx1.evaluate(probes=[1]).support[1] == 5
        assert ctx2.evaluate(probes=[1]).support[1] == 7
        assert ctx1.evaluate(probes=[1]).support[1] == 5

    def test_owned_executor_shut_down_by_close(self, ground):
        ctx = ShardedEvalContext(ground, density={1: 1}, shards=2, workers=2)
        assert ctx.evaluate(probes=[1]).support[1] == 1
        owned = ctx.executor
        ctx.close()
        with pytest.raises(RuntimeError):
            owned.load_density(0, 0, [])

    def test_close_leaves_shared_executor_running(self, ground):
        with ParallelExecutor(workers=1) as ex:
            with ShardedEvalContext(
                ground, density={1: 1}, shards=2, executor=ex
            ) as ctx:
                assert ctx.evaluate(probes=[1]).support[1] == 1
            # the context exit must not have shut the shared executor down
            ex.load_density(0, 0, [(0, 1)])

    def test_dropped_context_reclaims_owned_executor(self, ground):
        import gc

        ctx = ShardedEvalContext(ground, density={1: 1}, shards=2, workers=2)
        ctx.evaluate(probes=[1])
        finalizer = ctx._executor_finalizer
        del ctx
        gc.collect()
        assert not finalizer.alive  # ran: the worker pools were shut down

    def test_dropped_inline_executor_is_garbage_collected(self):
        import gc

        from repro.engine import parallel as par

        ex = ParallelExecutor(workers=1)
        ex.load_density(0, 0, [(0, 1)])
        ns = ex._ns
        del ex
        gc.collect()
        assert not any(key[0] == ns for key in par._SHARD_DATA)


class TestStreamSessionSharding:
    def test_sharded_session_matches_plain(self, ground, cset):
        plain = cset.stream_session()
        sharded = cset.stream_session(shards=3)
        for session in (plain, sharded):
            session.insert("AC", 2)
            session.delete("AC")
            session.insert("ABD")
        assert plain.violated_constraints() == sharded.violated_constraints()
        assert plain.support("A") == sharded.support("A")
        assert isinstance(sharded.context, ShardedEvalContext)
        assert not isinstance(plain.context, ShardedEvalContext)

    def test_basket_database_sharded_context(self):
        from repro.fis import BasketDatabase
        from repro.fis.discovery import discover_cover, theory_of

        S = GroundSet("ABC")
        db = BasketDatabase.of(S, "AB", "AB", "ABC", "C")
        ctx = db.sharded_context(shards=2)
        assert sum(ctx.shard_sizes()) == 3
        assert ctx.value(S.parse("AB")) == db.support(S.parse("AB"))
        # discovery consumes the sharded context directly
        assert theory_of(ctx).equivalent_to(theory_of(db))
        cover = discover_cover(ctx)
        assert cover.equivalent_to(discover_cover(db))

    def test_streaming_fd_checker_sharded(self):
        from repro.relational.fd import FunctionalDependency, StreamingFDChecker

        S = GroundSet("ABC")
        fds = [FunctionalDependency.of(S, "A", "B")]
        plain = StreamingFDChecker(S, fds)
        sharded = StreamingFDChecker(S, fds, shards=2)
        rows = [(1, 1, 0), (1, 2, 0), (2, 1, 1)]
        for row in rows:
            plain.insert(row)
            sharded.insert(row)
        assert plain.violated_fds() == sharded.violated_fds() == tuple(fds)
        plain.delete(rows[1])
        sharded.delete(rows[1])
        assert plain.violated_fds() == sharded.violated_fds() == ()
