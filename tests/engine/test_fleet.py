"""Fleet mode: ring, quotas, WAL shipping, supervision, routing.

The pure pieces (hash ring, token buckets, shipping store) are tested
in-process; the routed service is tested end to end by booting a real
:class:`FleetService` -- worker subprocesses spawned from a tiny
``repro serve`` command line -- and driving it with
:class:`ReproClient`, including the crash window: SIGKILL a worker mid
-stream and assert the standby holds exactly the acknowledged prefix.
"""

from __future__ import annotations

import os
import signal
import sys
import time

import pytest

from repro.engine.fleet import (
    DEFAULT_TENANT,
    FleetRouter,
    FleetService,
    FleetSupervisor,
    HashRing,
    ShippingStore,
    worker_dirs,
)
from repro.engine.net import ReproClient, ServiceError
from repro.engine.persist import DurableStore, decode_transaction
from repro.engine.plan import Planner, default_fleet_workers
from repro.engine.quota import QuotaPolicy, TenantQuotas, TokenBucket

CONSTRAINTS = "ABCD\nA -> B\nB -> CD\n"


# ----------------------------------------------------------------------
# hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_and_stable_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"tenant-{i}" for i in range(300)]
        assert [a.route(k) for k in keys] == [b.route(k) for k in keys]

    def test_covers_every_worker(self):
        ring = HashRing(4)
        owners = {ring.route(f"tenant-{i}") for i in range(400)}
        assert owners == {0, 1, 2, 3}

    def test_spread_is_roughly_even(self):
        ring = HashRing(4, vnodes=64)
        counts = [0] * 4
        for i in range(4000):
            counts[ring.route(f"key-{i}")] += 1
        # with 64 vnodes the split should be within ~2x of fair share
        assert min(counts) > 4000 / 4 / 2, counts

    def test_growing_the_ring_moves_a_minority_of_keys(self):
        small, big = HashRing(3), HashRing(4)
        keys = [f"session-{i}" for i in range(1000)]
        moved = sum(small.route(k) != big.route(k) for k in keys)
        # consistent hashing: ~1/4 of keys move to the new worker, not
        # the ~3/4 a modulo split would reshuffle
        assert moved < 500, moved

    def test_single_worker_ring(self):
        ring = HashRing(1)
        assert all(ring.route(f"k{i}") == 0 for i in range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


# ----------------------------------------------------------------------
# quotas
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3, clock=lambda: now[0])
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        now[0] = 0.5  # one token refilled at 2/s
        assert bucket.try_acquire() and not bucket.try_acquire()

    def test_retry_after_names_the_next_token(self):
        now = [0.0]
        bucket = TokenBucket(rate=0.5, burst=1, clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(2.0)
        now[0] = 2.0
        assert bucket.retry_after() == 0.0

    def test_bucket_never_exceeds_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2, clock=lambda: now[0])
        now[0] = 60.0
        assert bucket.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTenantQuotas:
    def test_unmetered_admits_everything(self):
        quotas = TenantQuotas()
        assert all(quotas.admit("t")[0] for _ in range(1000))
        assert quotas.throttled == 0

    def test_per_tenant_isolation(self):
        now = [0.0]
        quotas = TenantQuotas(
            QuotaPolicy(rate=1.0, burst=1), clock=lambda: now[0]
        )
        assert quotas.admit("a")[0]
        allowed, retry_after = quotas.admit("a")
        assert not allowed and retry_after >= 1
        # tenant b has its own bucket
        assert quotas.admit("b")[0]

    def test_counters_surface_in_stats(self):
        now = [0.0]
        quotas = TenantQuotas(
            QuotaPolicy(rate=1.0, burst=1), clock=lambda: now[0]
        )
        quotas.admit("a"), quotas.admit("a"), quotas.admit("b")
        stats = quotas.as_dict()
        assert stats["admitted"] == 2 and stats["throttled"] == 1
        assert stats["tenants"]["a"] == {"admitted": 1, "throttled": 1}
        assert stats["policy"]["metered"] is True

    def test_overrides_beat_the_default_policy(self):
        now = [0.0]
        quotas = TenantQuotas(
            QuotaPolicy(rate=1.0, burst=1),
            overrides={"vip": QuotaPolicy.unlimited()},
            clock=lambda: now[0],
        )
        assert all(quotas.admit("vip")[0] for _ in range(50))
        assert quotas.admit("pleb")[0] and not quotas.admit("pleb")[0]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QuotaPolicy(rate=-1)
        with pytest.raises(ValueError):
            QuotaPolicy(rate=1, burst=0.5)
        assert QuotaPolicy(rate=0.2).burst == 1.0  # floor at one token


# ----------------------------------------------------------------------
# fleet worker-count planning
# ----------------------------------------------------------------------
class TestFleetPlanning:
    def test_defaults_track_cpus_up_to_the_cap(self):
        assert default_fleet_workers(1) == 1
        assert default_fleet_workers(4) == 4
        assert default_fleet_workers(64) == Planner.FLEET_MAX_WORKERS

    def test_host_default_is_sane(self):
        count = default_fleet_workers()
        assert 1 <= count <= Planner.FLEET_MAX_WORKERS


# ----------------------------------------------------------------------
# WAL shipping
# ----------------------------------------------------------------------
class TestShippingStore:
    def test_appends_and_meta_mirror_synchronously(self, tmp_path):
        store = ShippingStore(str(tmp_path / "p"), str(tmp_path / "s"))
        store.write_meta({"kind": "stream-session", "n": 4})
        store.append(1, b"+ A\ncommit\n")
        store.append(2, b"+ AB 2\ncommit\n")
        store.close()
        standby = DurableStore(str(tmp_path / "s"))
        recovered = standby.recover()
        assert standby.meta == {"kind": "stream-session", "n": 4}
        assert [seq for seq, _ in recovered.tail] == [1, 2]

    def test_snapshot_compacts_both_directories(self, tmp_path):
        store = ShippingStore(str(tmp_path / "p"), str(tmp_path / "s"))
        store.write_meta({"kind": "x"})
        store.append(1, b"+ A\ncommit\n")
        store.snapshot({"tx": 1})
        store.close()
        for directory in ("p", "s"):
            recovered = DurableStore(str(tmp_path / directory)).recover()
            assert recovered.snapshot["tx"] == 1
            assert recovered.tail == []

    def test_recover_reseeds_a_stale_standby(self, tmp_path):
        primary, standby = str(tmp_path / "p"), str(tmp_path / "s")
        # the standby holds leftovers from a previous life
        old = DurableStore(standby)
        old.write_meta({"kind": "stale"})
        old.append(9, b"+ D\ncommit\n")
        old.close()
        plain = DurableStore(primary)
        plain.write_meta({"kind": "fresh"})
        plain.append(1, b"+ A\ncommit\n")
        plain.close()
        store = ShippingStore(primary, standby)
        recovered = store.recover()
        assert [seq for seq, _ in recovered.tail] == [1]
        store.close()
        reseeded = DurableStore(standby)
        assert reseeded.meta == {"kind": "fresh"}
        assert [seq for seq, _ in reseeded.recover().tail] == [1]

    def test_fresh_init_erases_the_old_standby(self, tmp_path):
        standby = str(tmp_path / "s")
        old = DurableStore(standby)
        old.write_meta({"kind": "stale"})
        old.close()
        store = ShippingStore(str(tmp_path / "p"), standby)
        store.write_meta({"kind": "new"})
        store.close()
        assert DurableStore(standby).meta == {"kind": "new"}

    def test_same_directory_refused(self, tmp_path):
        with pytest.raises(ValueError):
            ShippingStore(str(tmp_path / "d"), str(tmp_path / "d"))

    def test_stream_session_ships_acknowledged_commits(self, tmp_path):
        from repro.core import GroundSet
        from repro.engine import EngineConfig, StreamSession

        ground = GroundSet("ABC")
        store = ShippingStore(str(tmp_path / "p"), str(tmp_path / "s"))
        session = StreamSession(
            ground, config=EngineConfig(durable=store)
        )
        session.apply([(ground.parse("AB"), 2)])
        session.apply([(ground.parse("C"), 1)])
        session.close()
        # the standby alone reconstructs every acknowledged commit
        recovered = DurableStore(str(tmp_path / "s")).recover()
        deltas = [
            decode_transaction(ground, payload)
            for _, payload in recovered.tail
        ]
        assert deltas == [
            [(ground.parse("AB"), 2)], [(ground.parse("C"), 1)]
        ]

    def test_takeover_round_trip_via_sessions(self, tmp_path):
        """Primary dies; a session booted on the standby (shipping back)
        sees exactly the acknowledged state and keeps committing."""
        from repro.core import GroundSet
        from repro.engine import EngineConfig, StreamSession

        ground = GroundSet("ABC")
        primary, standby = str(tmp_path / "p"), str(tmp_path / "s")
        session = StreamSession(
            ground,
            config=EngineConfig(durable=ShippingStore(primary, standby)),
        )
        session.apply([(ground.parse("AB"), 3)])
        acknowledged_tx = session.transactions
        acknowledged = dict(session.context.density_items())
        session.close()

        # takeover: swap the roles -- the standby is now the data dir
        recovered = StreamSession(
            ground,
            config=EngineConfig(durable=ShippingStore(standby, primary)),
        )
        assert recovered.transactions == acknowledged_tx
        assert dict(recovered.context.density_items()) == acknowledged
        recovered.apply([(ground.parse("C"), 1)])
        assert recovered.transactions == acknowledged_tx + 1
        recovered.close()


# ----------------------------------------------------------------------
# the routed fleet, end to end
# ----------------------------------------------------------------------
def worker_command(constraint_path, data_dir=None, ship_to=None):
    cmd = [
        sys.executable, "-m", "repro", "serve", str(constraint_path),
        "--port", "0", "--host", "127.0.0.1", "--queue-size", "64",
    ]
    if data_dir:
        cmd += ["--data-dir", str(data_dir)]
    if ship_to:
        cmd += ["--ship-to", str(ship_to)]
    return cmd


def fleet_env():
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def constraint_file(tmp_path):
    path = tmp_path / "constraints.txt"
    path.write_text(CONSTRAINTS)
    return path


class TestFleetService:
    def test_routes_and_aggregates_health(self, constraint_file, tmp_path):
        service = FleetService(
            [worker_command(constraint_file) for _ in range(2)],
            env=fleet_env(),
        )
        with service.start_in_thread(timeout=90) as handle:
            client = handle.client()
            health = client.health()
            assert health["status"] == "ok" and health["fleet"] == 2
            assert client.implies("A -> CD") is True
            assert client.implies("C -> A") is False
            report = client.delta(["+ AB 2"])
            assert report["tx"] == 1
            stats = client.stats()
            assert stats["relayed"] >= 3
            assert stats["throttled"] == 0
            # one tenant -> all requests landed on one worker
            routed = [w["routed"] for w in stats["workers"]]
            assert sorted(routed)[0] == 0 and sorted(routed)[1] >= 3

    def test_tenants_partition_across_workers(self, constraint_file):
        service = FleetService(
            [worker_command(constraint_file) for _ in range(2)],
            env=fleet_env(),
        )
        ring = HashRing(2)
        # find two tenant ids living on different workers
        tenants = {ring.route(f"tenant-{i}"): f"tenant-{i}" for i in range(32)}
        assert set(tenants) == {0, 1}
        with service.start_in_thread(timeout=90) as handle:
            for index, tenant in tenants.items():
                client = handle.client(tenant=tenant)
                client.delta(["+ AB 1"])
            stats = handle.client().stats()
            by_index = {w["index"]: w["routed"] for w in stats["workers"]}
            assert by_index[0] >= 1 and by_index[1] >= 1
            # each worker saw exactly its own tenant's transaction (the
            # aggregated /healthz surfaces per-worker counters)
            health = handle.client().health()
            assert [row["transactions"] for row in health["workers"]] == [1, 1]

    def test_quota_429_is_distinct_from_saturation_503(self, constraint_file):
        service = FleetService(
            [worker_command(constraint_file)],
            quota=QuotaPolicy(rate=1.0, burst=2),
            env=fleet_env(),
        )
        with service.start_in_thread(timeout=90) as handle:
            client = handle.client(tenant="greedy", retries=0)
            statuses = []
            for _ in range(6):
                try:
                    client.implies("A -> CD")
                    statuses.append(200)
                except ServiceError as err:
                    statuses.append(err.status)
            assert 429 in statuses and 503 not in statuses
            stats = handle.client(tenant="watcher").stats()
            assert stats["throttled"] == statuses.count(429)
            assert stats["quota"]["tenants"]["greedy"]["throttled"] >= 1
            # the health/stats plane is never metered
            assert handle.client(tenant="greedy").health()["status"] == "ok"

    def test_429_is_never_auto_retried(self, constraint_file):
        service = FleetService(
            [worker_command(constraint_file)],
            quota=QuotaPolicy(rate=0.001, burst=1),
            env=fleet_env(),
        )
        with service.start_in_thread(timeout=90) as handle:
            client = handle.client(tenant="t", retries=5)
            assert client.implies("A -> CD") is True  # burst token
            before = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.implies("A -> CD")
            # a retrying client would sleep through its backoff budget
            assert time.monotonic() - before < 0.5
            assert excinfo.value.status == 429

    def test_restart_on_crash_with_takeover_of_routing(
        self, constraint_file
    ):
        service = FleetService(
            [worker_command(constraint_file) for _ in range(2)],
            env=fleet_env(),
        )
        with service.start_in_thread(timeout=90) as handle:
            client = handle.client(retries=6, backoff=0.2, max_backoff=2.0)
            assert client.implies("A -> CD") is True
            target = service.supervisor.workers[
                service.router.ring.route(DEFAULT_TENANT)
            ]
            target.proc.send_signal(signal.SIGKILL)
            target.proc.wait(timeout=30)
            # the routed worker is down: idempotent requests ride the
            # 503/retry loop until the supervisor respawns it
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    assert client.implies("A -> CD") is True
                    break
                except ServiceError as err:
                    assert err.status == 503
                    time.sleep(0.2)
            else:
                pytest.fail("worker never came back")
            assert target.restarts == 1

    def test_crash_window_standby_holds_acknowledged_prefix(
        self, constraint_file, tmp_path
    ):
        """SIGKILL a worker mid-stream; the standby directory recovers
        exactly the acknowledged transactions (the tentpole invariant)."""
        from repro.core import GroundSet

        data = worker_dirs(str(tmp_path / "data"), 1)[0]
        standby = worker_dirs(str(tmp_path / "standby"), 1)[0]
        service = FleetService(
            [worker_command(constraint_file, data_dir=data, ship_to=standby)],
            env=fleet_env(),
        )
        acknowledged = 0
        with service.start_in_thread(timeout=90) as handle:
            client = handle.client(retries=0)
            for i in range(5):
                report = client.delta([f"+ AB {i + 1}"])
                acknowledged = report["tx"]
            worker = service.supervisor.workers[0]
            worker.proc.send_signal(signal.SIGKILL)
            worker.proc.wait(timeout=30)
        # no drain, no snapshot: the standby WAL alone must replay to
        # exactly the acknowledged prefix
        ground = GroundSet("ABCD")
        recovered = DurableStore(standby).recover()
        seqs = [seq for seq, _ in recovered.tail]
        assert seqs == list(range(1, acknowledged + 1))
        total = 0
        for _, payload in recovered.tail:
            for _mask, amount in decode_transaction(ground, payload):
                total += amount
        assert total == sum(range(1, 6))

    def test_ready_failure_is_loud(self, tmp_path):
        bad = tmp_path / "nope.txt"  # missing constraint file
        service = FleetService(
            [worker_command(bad)], ready_timeout=6.0, env=fleet_env()
        )
        with pytest.raises(ServiceError):
            service.start_in_thread(timeout=30)


class TestFleetRouterUnits:
    def test_tenant_extraction_order(self):
        assert FleetRouter.tenant_of({"x-repro-tenant": "h"}, {"tenant": "b"}) == "h"
        assert FleetRouter.tenant_of({}, {"tenant": "b"}) == "b"
        assert FleetRouter.tenant_of({}, {}) == DEFAULT_TENANT
        assert FleetRouter.tenant_of({}, {"tenant": 7}) == DEFAULT_TENANT

    def test_ring_size_must_match_fleet(self):
        supervisor = FleetSupervisor([["true"], ["true"]])
        with pytest.raises(ValueError):
            FleetRouter(supervisor, ring=HashRing(3))

    def test_supervisor_needs_workers(self):
        with pytest.raises(ValueError):
            FleetSupervisor([])
