"""Host calibration: measurement, threshold derivation, persistence,
the ``REPRO_CALIBRATION`` switch, and every failure path.

The failure-path contract is the point: a corrupt, older-schema or
foreign-host profile must recalibrate *loudly* (one
:class:`CalibrationWarning` naming the reason) -- never crash, never
silently reuse stale coefficients.  Synthetic profiles with exact model
coefficients pin the threshold math; real measurements use tiny sizes
and no process spawn to stay fast.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.core import GroundSet
from repro.engine import StreamSession, calibrate
from repro.engine.calibrate import (
    PROFILE_SCHEMA,
    SHARD_BAR_RANGE,
    VEC_BAR_RANGE,
    HostProfile,
    calibration_mode,
    effective_cpus,
    ensure_profile,
    load_profile,
    measure_profile,
    save_profile,
)
from repro.engine.plan import (
    _CALIBRATED_PLANNERS,
    _DEFAULT_PLANNER,
    Planner,
    Workload,
    default_planner,
)
from repro.errors import CalibrationWarning

#: Fast measurement settings: tiny tables, one repeat, no process pool.
FAST = dict(sizes=(4, 6), repeats=1, measure_spawn=False)


def profile_with(
    list_a=1e-6, vec_a=1e-7, vec_b=0.0, roundtrip=None, cpus=None
) -> HostProfile:
    """A synthetic profile whose fitted model coefficients are exact:
    ``t_list(n) = list_a * n * 2^n`` and ``t_vec(n) = vec_a * n * 2^n
    + vec_b`` -- so threshold expectations can be computed by hand."""
    sizes = (8, 12)
    return HostProfile(
        cpus=cpus if cpus is not None else effective_cpus(),
        created="2026-01-01T00:00:00",
        python="3.11",
        machine="testhost",
        list_butterfly_s={n: list_a * n * (1 << n) for n in sizes},
        vec_butterfly_s={n: vec_a * n * (1 << n) + vec_b for n in sizes},
        roundtrip_s=roundtrip,
    )


@pytest.fixture(autouse=True)
def _fresh_planner_cache():
    _CALIBRATED_PLANNERS.clear()
    yield
    _CALIBRATED_PLANNERS.clear()


class TestMeasurement:
    def test_measure_profile_shape(self):
        profile = measure_profile(**FAST)
        assert profile.cpus == effective_cpus()
        assert set(profile.list_butterfly_s) == {4, 6}
        assert set(profile.vec_butterfly_s) == {4, 6}
        assert all(t > 0 for t in profile.list_butterfly_s.values())
        # spawn skipped: no roundtrip, hence no measured shard bar
        assert profile.roundtrip_s is None
        assert "SHARD_MIN_N" not in profile.thresholds()
        assert "VEC_MIN_N" in profile.thresholds()

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(ValueError, match="2 distinct sizes"):
            measure_profile(sizes=(6, 6), repeats=1, measure_spawn=False)


class TestThresholdDerivation:
    def test_vec_always_faster_hits_the_floor(self):
        profile = profile_with(list_a=1e-6, vec_a=1e-8)
        assert profile.thresholds()["VEC_MIN_N"] == VEC_BAR_RANGE[0]

    def test_vec_never_faster_hits_the_cap(self):
        profile = profile_with(list_a=1e-7, vec_a=1e-6)
        assert profile.thresholds()["VEC_MIN_N"] == VEC_BAR_RANGE[1]

    def test_vec_crossover_lands_where_the_model_says(self):
        # vec wins once (list_a - vec_a) * n * 2^n >= vec_b:
        # 9e-7 * n * 2^n >= 3e-3 first holds at n = 9
        profile = profile_with(list_a=1e-6, vec_a=1e-7, vec_b=3e-3)
        assert profile.thresholds()["VEC_MIN_N"] == 9

    def test_shard_bar_tracks_the_pool_roundtrip(self):
        # one vec pass must cost >= 2 * roundtrip: t_vec(13) ~ 10.6ms
        # < 16ms <= t_vec(14) ~ 22.9ms, so the bar lands at 14
        profile = profile_with(vec_a=1e-7, roundtrip=0.008)
        assert profile.thresholds()["SHARD_MIN_N"] == 14

    def test_shard_bar_clamps(self):
        cheap = profile_with(vec_a=1e-7, roundtrip=1e-9)
        assert cheap.thresholds()["SHARD_MIN_N"] == SHARD_BAR_RANGE[0]
        dear = profile_with(vec_a=1e-7, roundtrip=10.0)
        assert dear.thresholds()["SHARD_MIN_N"] == SHARD_BAR_RANGE[1]


class TestPersistence:
    def test_roundtrip_preserves_profile_and_thresholds(self, tmp_path):
        measured = measure_profile(**FAST)
        saved = save_profile(measured, str(tmp_path / "p.json"))
        loaded = load_profile(saved.path)
        assert loaded == measured  # path is excluded from equality
        assert loaded.path == saved.path
        assert loaded.thresholds() == measured.thresholds()

    def test_ensure_profile_reuses_a_valid_file_silently(self, tmp_path):
        path = str(tmp_path / "p.json")
        first = ensure_profile(path=path, **FAST)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = ensure_profile(path=path, **FAST)
        assert again.created == first.created  # loaded, not re-measured

    def test_recalibrate_forces_a_fresh_measurement(self, tmp_path):
        path = str(tmp_path / "p.json")
        first = ensure_profile(path=path, **FAST)
        forced = ensure_profile(path=path, recalibrate=True, **FAST)
        # a fresh measurement was taken (perf_counter timings never
        # collide at nanosecond resolution) and persisted over the old
        assert forced.list_butterfly_s != first.list_butterfly_s
        assert load_profile(path) == forced


class TestFailurePaths:
    def test_corrupt_json_recalibrates_loudly(self, tmp_path):
        path = str(tmp_path / "p.json")
        with open(path, "w") as fh:
            fh.write("{this is not json")
        with pytest.warns(CalibrationWarning, match="corrupt"):
            assert load_profile(path) is None
        with pytest.warns(CalibrationWarning, match="corrupt"):
            profile = ensure_profile(path=path, **FAST)
        assert profile.cpus == effective_cpus()
        # the fresh measurement healed the file in place
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_profile(path) == profile

    def test_older_schema_recalibrates_loudly(self, tmp_path):
        path = str(tmp_path / "p.json")
        ensure_profile(path=path, **FAST)
        with open(path) as fh:
            data = json.load(fh)
        data["schema"] = PROFILE_SCHEMA - 1
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.warns(CalibrationWarning, match="schema"):
            profile = ensure_profile(path=path, **FAST)
        with open(path) as fh:
            assert json.load(fh)["schema"] == PROFILE_SCHEMA
        assert profile.cpus == effective_cpus()

    def test_foreign_cpu_count_recalibrates_loudly(self, tmp_path):
        path = str(tmp_path / "p.json")
        ensure_profile(path=path, **FAST)
        with open(path) as fh:
            data = json.load(fh)
        data["cpus"] = effective_cpus() + 7
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.warns(CalibrationWarning, match="CPU"):
            profile = ensure_profile(path=path, **FAST)
        assert profile.cpus == effective_cpus()
        with open(path) as fh:
            assert json.load(fh)["cpus"] == effective_cpus()

    def test_malformed_measurements_recalibrate_loudly(self, tmp_path):
        path = str(tmp_path / "p.json")
        ensure_profile(path=path, **FAST)
        with open(path) as fh:
            data = json.load(fh)
        data["measurements"]["vec_butterfly_s"] = {"4": -1.0, "6": 0.001}
        with open(path, "w") as fh:
            json.dump(data, fh)
        with pytest.warns(CalibrationWarning, match="invalid"):
            assert load_profile(path) is None

    def test_unwritable_destination_warns_but_still_calibrates(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        path = str(blocker / "sub" / "p.json")
        with pytest.warns(CalibrationWarning, match="persist"):
            profile = ensure_profile(path=path, **FAST)
        # the in-memory measurement still drives this process's planner
        assert profile.cpus == effective_cpus()
        assert "VEC_MIN_N" in profile.thresholds()


class TestCalibrationSwitch:
    def test_disabled_by_default_and_for_off_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
        assert calibration_mode() is None
        assert default_planner() is _DEFAULT_PLANNER
        for value in ("off", "0", "false", "no", ""):
            monkeypatch.setenv("REPRO_CALIBRATION", value)
            assert calibration_mode() is None

    def test_explicit_path_and_directory_values(self, tmp_path, monkeypatch):
        path = str(tmp_path / "prof.json")
        monkeypatch.setenv("REPRO_CALIBRATION", path)
        assert calibration_mode() == path
        monkeypatch.setenv("REPRO_CALIBRATION", str(tmp_path))
        assert calibration_mode() == str(tmp_path / "host-profile.json")

    def test_on_resolves_the_default_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        monkeypatch.setenv("REPRO_CALIBRATION", "on")
        assert calibration_mode() == str(
            tmp_path / "repro" / "host-profile.json"
        )

    def test_default_planner_measures_persists_and_caches(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "prof.json")
        monkeypatch.setenv("REPRO_CALIBRATION", path)
        planner = default_planner()
        assert planner.profile is not None
        assert planner.profile.cpus == effective_cpus()
        assert os.path.exists(path)
        assert default_planner() is planner  # cached per resolved path
        monkeypatch.setenv("REPRO_CALIBRATION", "off")
        assert default_planner() is _DEFAULT_PLANNER


class TestCalibratedPlanner:
    def test_measured_thresholds_override_instance_not_class(self):
        profile = profile_with(list_a=1e-6, vec_a=1e-8)  # vec wins always
        planner = Planner.calibrated(profile)
        assert planner.VEC_MIN_N == VEC_BAR_RANGE[0]
        assert Planner.VEC_MIN_N == 8  # the assumed default is untouched
        plan = planner.plan(Workload(n=5, queries=1))
        assert plan.backend == "exact-vec"

    def test_explain_labels_measured_vs_assumed(self):
        profile = profile_with(vec_a=1e-7, roundtrip=0.008)
        planner = Planner.calibrated(profile)
        reasons = planner.plan(Workload(n=10, queries=1)).reasons
        cal = [r for r in reasons if r.startswith("calibration:")]
        assert len(cal) == 2
        assert "host profile" in cal[0]
        assert "vec_min_n=" in cal[1] and "measured (assumed 8)" in cal[1]
        assert "vec_stream_min_n=14 assumed" in cal[1]
        assert "shard_min_n=14 measured (assumed 12)" in cal[1]

    def test_uncalibrated_plans_carry_no_calibration_lines(self):
        # the byte-identical acceptance bar: calibration off means the
        # stock planner, whose output must not change at all
        reasons = _DEFAULT_PLANNER.plan(Workload(n=10, queries=1)).reasons
        assert not any("calibration" in r for r in reasons)

    def test_session_surfaces_its_calibration(self):
        ground = GroundSet("ABC")
        stock = StreamSession(ground)
        assert stock.calibration == {"enabled": False}
        calibrated = StreamSession(
            ground, planner=Planner.calibrated(profile_with())
        )
        digest = calibrated.calibration
        assert digest["enabled"] is True
        assert digest["cpus"] == effective_cpus()
        assert "vec_min_n" in digest["thresholds"]
