"""Durability: WAL framing, snapshots, recovery, and crash windows.

The crash-window cases the issue calls out are each pinned here:

* torn final WAL record (truncated mid-write) -> dropped on recovery,
  the uncommitted transaction vanishes, everything earlier survives;
* empty WAL with a stale snapshot -> recovery lands exactly on the
  snapshot state;
* snapshot ahead of the log (covered records already compacted away,
  or the whole log gone) -> recovery from the snapshot alone;
* CRC damage *before* the tail, sequence gaps, undecodable snapshots,
  or counter mismatches -> loud, typed errors, never silent divergence.
"""

from __future__ import annotations

import json
import os
import struct

import pytest

from repro.core import ConstraintSet, GroundSet
from repro.engine import StreamSession
from repro.engine.persist import (
    DurableStore,
    SnapshotStore,
    WriteAheadLog,
    decode_transaction,
    density_fingerprint,
    encode_transaction,
    format_subset,
    parse_value,
)
from repro.errors import (
    CorruptSnapshotError,
    CorruptWalError,
    PersistenceError,
    WalGapError,
)


@pytest.fixture
def ground() -> GroundSet:
    return GroundSet("ABCD")


@pytest.fixture
def cset(ground) -> ConstraintSet:
    return ConstraintSet.of(ground, "A -> B", "B -> CD")


def wal_path(tmp_path) -> str:
    return os.path.join(str(tmp_path), "wal.log")


class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        log = WriteAheadLog(wal_path(tmp_path))
        payloads = [b"alpha", b"", b"\x00\xffbinary", b"x" * 5000]
        for seq, payload in enumerate(payloads, start=1):
            log.append(seq, payload)
        log.close()
        records, torn = WriteAheadLog(wal_path(tmp_path)).scan()
        assert not torn
        assert records == list(enumerate(payloads, start=1))

    def test_missing_file_scans_empty(self, tmp_path):
        records, torn = WriteAheadLog(wal_path(tmp_path)).scan()
        assert records == [] and not torn

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(wal_path(tmp_path), fsync="sometimes")

    @pytest.mark.parametrize("cut", ["header", "payload", "crc"])
    def test_torn_tail_detected_and_repaired(self, tmp_path, cut):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        log.append(1, b"first")
        log.append(2, b"second-record-payload")
        log.close()
        size = os.path.getsize(path)
        second = 16 + len(b"second-record-payload")
        if cut == "header":
            torn_size = size - second + 7  # mid-header
        elif cut == "payload":
            torn_size = size - 10  # mid-payload
        else:  # flip a payload byte of the final record: CRC fails at EOF
            torn_size = None
        if torn_size is not None:
            with open(path, "rb+") as fh:
                fh.truncate(torn_size)
        else:
            with open(path, "rb+") as fh:
                fh.seek(size - 1)
                byte = fh.read(1)
                fh.seek(size - 1)
                fh.write(bytes([byte[0] ^ 0xFF]))
        records, torn = WriteAheadLog(path).repair()
        assert torn
        assert records == [(1, b"first")]
        # physically truncated: a fresh scan is clean
        records2, torn2 = WriteAheadLog(path).scan()
        assert records2 == [(1, b"first")] and not torn2

    def test_corruption_before_tail_is_loud(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        log.append(1, b"first-record")
        log.append(2, b"second")
        log.close()
        with open(path, "rb+") as fh:
            fh.seek(18)  # inside the first record's payload
            fh.write(b"X")
        with pytest.raises(CorruptWalError, match="unrecoverable"):
            WriteAheadLog(path).scan()

    def test_rewrite_compacts_atomically(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path)
        for seq in range(1, 6):
            log.append(seq, f"tx{seq}".encode())
        log.rewrite([(4, b"tx4"), (5, b"tx5")])
        records, torn = log.scan()
        assert records == [(4, b"tx4"), (5, b"tx5")] and not torn
        # appends continue after a rewrite
        log.append(6, b"tx6")
        log.close()
        records, _ = WriteAheadLog(path).scan()
        assert [seq for seq, _ in records] == [4, 5, 6]

    def test_fsync_never_still_recovers_flushed_records(self, tmp_path):
        path = wal_path(tmp_path)
        log = WriteAheadLog(path, fsync="never")
        log.append(1, b"payload")
        log.close()
        records, torn = WriteAheadLog(path).scan()
        assert records == [(1, b"payload")] and not torn


class TestSnapshotStore:
    def test_write_prunes_and_latest_wins(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=2)
        for tx in (0, 3, 7):
            store.write({"tx": tx, "state": tx * 10})
        assert [tx for tx, _ in store.list()] == [3, 7]
        assert store.latest()["state"] == 70

    def test_empty_dir_has_no_snapshot(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).latest() is None

    def test_undecodable_snapshot_is_loud(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        path = store.write({"tx": 4})
        with open(path, "w") as fh:
            fh.write("{not json")
        with pytest.raises(CorruptSnapshotError, match="cannot be decoded"):
            store.latest()

    def test_mislabeled_snapshot_is_loud(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        path = store.write({"tx": 4})
        with open(path, "w") as fh:
            json.dump({"tx": 9}, fh)
        with pytest.raises(CorruptSnapshotError, match="claims tx 9"):
            store.latest()


class TestTransactionCodec:
    def test_roundtrip_including_empty_set(self, ground):
        deltas = [(0, 2), (ground.parse("AB"), 3), (ground.parse("C"), -1)]
        payload = encode_transaction(ground, deltas)
        assert b"commit" in payload and b"+ 0 2" in payload
        assert decode_transaction(ground, payload) == deltas

    def test_float_amounts_roundtrip_exactly(self, ground):
        deltas = [(3, 0.1), (5, -0.30000000000000004)]
        decoded = decode_transaction(
            ground, encode_transaction(ground, deltas)
        )
        assert decoded == deltas  # repr round-trip: bit-exact

    def test_fraction_amounts_roundtrip_exactly(self, ground):
        from fractions import Fraction

        deltas = [(1, Fraction(1, 3)), (3, Fraction(-2, 7))]
        decoded = decode_transaction(
            ground, encode_transaction(ground, deltas)
        )
        assert decoded == deltas
        assert all(isinstance(v, Fraction) for _, v in decoded)

    def test_exotic_amounts_rejected(self, ground):
        from decimal import Decimal

        with pytest.raises(PersistenceError, match="amounts"):
            encode_transaction(ground, [(1, Decimal("0.5"))])
        with pytest.raises(PersistenceError, match="boolean"):
            encode_transaction(ground, [(1, True)])

    def test_undecodable_payloads_are_loud(self, ground):
        with pytest.raises(CorruptWalError):
            decode_transaction(ground, b"\xff\xfe garbage")
        with pytest.raises(CorruptWalError, match="2 transactions"):
            decode_transaction(ground, b"+ A 1\ncommit\n+ B 1\ncommit\n")

    def test_format_subset_roundtrips_empty_mask(self, ground):
        assert ground.parse(format_subset(ground, 0)) == 0
        assert format_subset(ground, ground.parse("AC")) == "AC"

    def test_parse_value_types(self):
        from fractions import Fraction

        assert parse_value("17") == 17 and isinstance(parse_value("17"), int)
        assert parse_value("0.5") == 0.5
        assert parse_value("1/3") == Fraction(1, 3)

    def test_fingerprint_is_order_insensitive_and_value_sensitive(self):
        a = density_fingerprint([(1, 2), (3, 4)])
        assert a == density_fingerprint([(3, 4), (1, 2)])
        assert a != density_fingerprint([(1, 2), (3, 5)])


def make_session(ground, cset, tmp_path, **kwargs) -> StreamSession:
    return StreamSession(
        ground,
        constraints=cset.constraints,
        durable=str(tmp_path / "data"),
        **kwargs,
    )


def state_of(session):
    ctx = session.context
    return (
        list(ctx.density_items()),
        list(ctx.support_table()),
        session.violated_constraints(),
        session.transactions,
    )


class TestDurableSession:
    def test_reopen_reproduces_state_exactly(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path, snapshot_every=2)
        s.insert("AB", 2)
        s.insert("ABC")
        s.insert("A")
        s.delete("A")
        expected = state_of(s)
        s.close()
        s2 = make_session(ground, cset, tmp_path)
        assert state_of(s2) == expected
        s2.close()

    def test_reopen_without_snapshot_every_replays_wal(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path)
        s.apply([(ground.parse("AB"), 1), (ground.parse("CD"), 2)])
        s.apply([(0, 3)])
        expected = state_of(s)
        s.close()
        s2 = make_session(ground, cset, tmp_path)
        assert state_of(s2) == expected
        s2.close()

    def test_float_backend_roundtrip(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path, backend="float")
        s.apply([(3, 0.25)])
        s.apply([(7, 1.5), (3, -0.25)])
        expected = state_of(s)
        s.close()
        s2 = make_session(ground, cset, tmp_path, backend="float")
        assert state_of(s2) == expected
        s2.close()

    def test_sharded_reopen_matches(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path, shards=3)
        for text in ("AB", "ABC", "CD", "D"):
            s.insert(text)
        expected = state_of(s)
        sizes = s.context.shard_sizes()
        s.snapshot()
        s.close()
        s2 = make_session(ground, cset, tmp_path, shards=3)
        assert state_of(s2) == expected
        assert s2.context.shard_sizes() == sizes
        s2.close()

    def test_snapshot_compacts_wal(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path)
        for _ in range(4):
            s.insert("AB")
        s.snapshot()
        s.close()
        store = DurableStore(str(tmp_path / "data"))
        assert store.wal.scan() == ([], False)
        recovered = store.recover()
        assert recovered.tx == 4 and recovered.tail == []

    def test_set_ops_replay_deterministically(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path)
        s.apply_ops([("delta", ground.parse("AB"), 2)])
        s.apply_ops([("set", ground.parse("AB"), 7)])  # resolved to +5
        expected = state_of(s)
        s.close()
        s2 = make_session(ground, cset, tmp_path)
        assert state_of(s2) == expected
        s2.close()

    def test_mismatched_identity_is_loud(self, ground, cset, tmp_path):
        make_session(ground, cset, tmp_path).close()
        with pytest.raises(PersistenceError, match="backend"):
            make_session(ground, cset, tmp_path, backend="float")
        with pytest.raises(PersistenceError, match=r"\|S\|"):
            StreamSession(
                GroundSet("ABC"), durable=str(tmp_path / "data")
            )

    def test_mismatched_seed_is_loud(self, ground, cset, tmp_path):
        s = StreamSession(
            ground, density={ground.parse("AB"): 2},
            durable=str(tmp_path / "data"),
        )
        s.close()
        # same seed: fine (the BasketDatabase reopen path)
        StreamSession(
            ground, density={ground.parse("AB"): 2},
            durable=str(tmp_path / "data"),
        ).close()
        # no seed: fine (recover whatever is there)
        StreamSession(ground, durable=str(tmp_path / "data")).close()
        with pytest.raises(PersistenceError, match="different instance"):
            StreamSession(
                ground, density={ground.parse("AB"): 3},
                durable=str(tmp_path / "data"),
            )

    def test_wrong_kind_of_data_dir_is_loud(self, ground, tmp_path):
        store = DurableStore(str(tmp_path / "data"))
        store.write_meta({"format": 1, "kind": "fd-checker", "n": 4})
        with pytest.raises(PersistenceError, match="fd-checker"):
            StreamSession(ground, durable=str(tmp_path / "data"))

    def test_snapshot_on_memory_session_is_loud(self, ground):
        with pytest.raises(PersistenceError, match="not durable"):
            StreamSession(ground).snapshot()


class TestCrashWindows:
    """The issue's three named windows, plus the gap case."""

    def _data(self, tmp_path) -> str:
        return str(tmp_path / "data")

    def test_torn_final_record_drops_only_the_uncommitted_tx(
        self, ground, cset, tmp_path
    ):
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        s.insert("ABC")
        committed = state_of(s)
        s.insert("A")  # this one will be torn away
        s.close()
        path = os.path.join(self._data(tmp_path), "wal.log")
        with open(path, "rb+") as fh:
            fh.truncate(os.path.getsize(path) - 3)
        s2 = make_session(ground, cset, tmp_path)
        # tx 3 never committed: recovery lands on tx 2 exactly
        assert state_of(s2) == committed
        # and the session keeps working (tx numbering continues at 3)
        s2.insert("D")
        assert s2.transactions == 3
        s2.close()

    def test_empty_wal_with_stale_snapshot_recovers_snapshot_state(
        self, ground, cset, tmp_path
    ):
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        s.insert("CD")
        s.snapshot()  # compacts: WAL is now empty, snapshot carries tx 2
        expected = state_of(s)
        s.close()
        assert WriteAheadLog(
            os.path.join(self._data(tmp_path), "wal.log")
        ).scan() == ([], False)
        s2 = make_session(ground, cset, tmp_path)
        assert state_of(s2) == expected
        s2.close()

    def test_snapshot_ahead_of_log_recovers_from_snapshot_alone(
        self, ground, cset, tmp_path
    ):
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        s.insert("CD")
        s.snapshot()
        s.insert("D")
        expected_through_2 = None
        s.close()
        # simulate losing the WAL entirely: the snapshot (tx 2) is now
        # "ahead" of an empty log -- recovery must land on tx 2, not
        # invent tx 3, and not fail
        os.unlink(os.path.join(self._data(tmp_path), "wal.log"))
        s2 = make_session(ground, cset, tmp_path)
        assert s2.transactions == 2
        # tx 3 is gone with the log: no density row at exactly {D}
        assert s2.context.density_value(ground.parse("D")) == 0
        expected_through_2 = state_of(s2)
        s2.close()
        # stale snapshot + records *behind* it (pre-compaction crash
        # window): the covered records are skipped by sequence number
        store = DurableStore(self._data(tmp_path))
        store.append(1, encode_transaction(ground, [(1, 1)]))
        store.append(2, encode_transaction(ground, [(2, 1)]))
        store.close()
        s3 = make_session(ground, cset, tmp_path)
        assert state_of(s3) == expected_through_2
        s3.close()

    def test_wal_gap_after_snapshot_is_loud(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        s.snapshot()
        s.insert("CD")
        s.insert("D")
        s.close()
        # drop the middle record (tx 2): committed data is missing
        path = os.path.join(self._data(tmp_path), "wal.log")
        records, torn = WriteAheadLog(path).scan()
        assert [seq for seq, _ in records] == [2, 3] and not torn
        WriteAheadLog(path).rewrite([records[1]])
        with pytest.raises(WalGapError, match="missing"):
            make_session(ground, cset, tmp_path)

    def test_out_of_order_wal_is_loud(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        s.insert("CD")
        s.close()
        path = os.path.join(self._data(tmp_path), "wal.log")
        records, _ = WriteAheadLog(path).scan()
        WriteAheadLog(path).rewrite([records[1], records[0]])
        with pytest.raises(CorruptWalError, match="regressed"):
            make_session(ground, cset, tmp_path)

    def test_tampered_snapshot_counters_are_loud(self, ground, cset, tmp_path):
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        s.snapshot()
        s.close()
        store = SnapshotStore(self._data(tmp_path))
        entries = store.list()
        tx, path = entries[-1]
        with open(path) as fh:
            payload = json.load(fh)
        payload["fingerprint"] ^= 0xDEAD
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(CorruptSnapshotError, match="fingerprint"):
            make_session(ground, cset, tmp_path)

    def test_header_struct_is_16_bytes(self):
        # the framing constant the torn-tail arithmetic above relies on
        from repro.engine.persist import _HEADER

        assert _HEADER.size == 16
        assert _HEADER.pack(1, 2, 3) == struct.pack("<QII", 1, 2, 3)


class TestWriteAheadOrdering:
    def test_rejected_transaction_never_reaches_the_log(
        self, ground, cset, tmp_path
    ):
        from decimal import Decimal

        s = make_session(ground, cset, tmp_path)
        s.insert("AB")
        with pytest.raises(ValueError, match="outside the ground set"):
            s.apply([(1 << 10, 1)])  # mask outside |S| = 4
        with pytest.raises(PersistenceError, match="amounts"):
            s.apply([(1, Decimal("0.5"))])
        s.insert("CD")  # numbering unaffected by the rejected attempts
        expected = state_of(s)
        s.close()
        s2 = make_session(ground, cset, tmp_path)
        assert state_of(s2) == expected
        s2.close()

    def test_fraction_densities_survive_durability(self, ground, cset, tmp_path):
        from fractions import Fraction

        s = StreamSession(
            ground,
            density={1: Fraction(1, 2)},
            durable=str(tmp_path / "data"),
        )
        s.apply([(3, Fraction(1, 3))])
        expected = list(s.context.density_items())
        s.close()
        s2 = StreamSession(
            ground, density={1: Fraction(1, 2)},
            durable=str(tmp_path / "data"),
        )
        assert list(s2.context.density_items()) == expected
        s2.close()

    def test_failed_apply_wedges_instead_of_diverging(
        self, ground, cset, tmp_path, monkeypatch
    ):
        """An apply_batch failure after the append must neither reuse
        the logged sequence number (which would brick the log) nor let
        the session keep serving divergent state: the session wedges,
        refusing writes and snapshots, and reopening replays the
        logged record to heal."""
        from repro.engine import IncrementalEvalContext

        s = make_session(ground, cset, tmp_path)
        s.insert("AB")

        def exploding(self, deltas):
            raise RuntimeError("simulated executor death")

        monkeypatch.setattr(IncrementalEvalContext, "apply_batch", exploding)
        with pytest.raises(RuntimeError, match="executor death"):
            s.insert("CD")
        monkeypatch.undo()
        assert s.transactions == 2  # the logged record owns seq 2
        # live tables lag the log: writes and snapshots must refuse,
        # never persist (and compact away) the divergence
        with pytest.raises(PersistenceError, match="wedged"):
            s.insert("D")
        with pytest.raises(PersistenceError, match="wedged"):
            s.snapshot()
        s.close()
        s2 = make_session(ground, cset, tmp_path)
        # recovery replays the logged record: the state heals
        assert s2.transactions == 2
        assert s2.context.density_value(ground.parse("CD")) == 1
        s2.insert("D")  # seq 3, fresh and consistent
        s2.close()
        s3 = make_session(ground, cset, tmp_path)
        assert s3.transactions == 3
        assert s3.context.density_value(ground.parse("D")) == 1
        s3.close()

    def test_interrupted_initialization_reseeds_or_refuses(
        self, ground, cset, tmp_path
    ):
        """Crash window between write_meta and the tx-0 snapshot: a
        matching seed re-seeds (and heals), no seed fails loudly."""
        seed = {ground.parse("AB"): 5}
        data = str(tmp_path / "data")
        s = StreamSession(ground, density=seed, durable=data)
        s.close()
        for entry in os.listdir(data):
            if entry.startswith("snapshot-"):
                os.unlink(os.path.join(data, entry))
        with pytest.raises(PersistenceError, match="seed snapshot is missing"):
            StreamSession(ground, durable=data)
        s2 = StreamSession(ground, density=seed, durable=data)
        assert s2.support("AB") == 5  # not silently empty
        s2.close()
        # the reopen healed the missing snapshot: a bare open now works
        s3 = StreamSession(ground, durable=data)
        assert s3.support("AB") == 5
        s3.close()

    def test_failed_append_wedges_the_session(
        self, ground, cset, tmp_path, monkeypatch
    ):
        """A failed WAL append (ENOSPC, EIO) may leave partial record
        bytes behind; the session must refuse further writes instead of
        appending after the garbage."""
        s = make_session(ground, cset, tmp_path)
        s.insert("AB")

        def failing_append(self, seq, payload):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(DurableStore, "append", failing_append)
        with pytest.raises(OSError, match="No space left"):
            s.insert("CD")
        monkeypatch.undo()
        with pytest.raises(PersistenceError, match="wedged"):
            s.insert("D")
        s.close()
        # the failed transaction was never acknowledged: recovery has tx 1
        s2 = make_session(ground, cset, tmp_path)
        assert s2.transactions == 1
        s2.close()
