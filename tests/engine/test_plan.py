"""The engine planner: tier boundaries, the config surface, the factory,
and the deprecation shims.

Every cost-model threshold is crossed from both sides, degenerate hosts
(1 CPU) and ground sets (``|S| in {0, 1}``) are pinned, and the
deprecated ``backend=``/``shards=``/``workers=``/``durable=`` kwargs are
verified to keep working while warning with
:class:`EngineDeprecationWarning`.
"""

from __future__ import annotations

import pytest

from repro.core import ConstraintSet, GroundSet
from repro.core.ground import MAX_DENSE_SIZE
from repro.engine import (
    EngineConfig,
    EvalContext,
    IncrementalEvalContext,
    Planner,
    ShardedEvalContext,
    StreamSession,
    Workload,
    build_context,
    default_planner,
    plan_of_context,
)
from repro.engine.plan import DENSE_LIMIT, LIVE_TIERS, TIERS
from repro.errors import EngineDeprecationWarning, NotApplicableError, PlanError
from repro.fis import BasketDatabase
from repro.relational import StreamingFDChecker
from repro.relational.fd import FunctionalDependency


def plan_for(planner=None, config=None, **workload):
    planner = planner or default_planner()
    return planner.plan(Workload(**workload), config)


class TestCostModelBoundaries:
    def test_dense_limit_matches_core(self):
        # one constant, two layers: the planner's cutoff must be the
        # ground set's own dense capability bound
        assert DENSE_LIMIT == MAX_DENSE_SIZE

    def test_one_shot_workloads_are_batched(self):
        plan = plan_for(n=8, constraints=4, queries=10)
        assert plan.tier == "batched"
        assert plan.shards == 1 and plan.effective_workers == 1

    def test_degenerate_ground_sets_stay_scalar(self):
        for n in (0, 1):
            assert plan_for(n=n, queries=1).tier == "scalar"
        assert plan_for(n=2, queries=1).tier == "batched"

    def test_past_dense_limit_is_scalar(self):
        assert plan_for(n=DENSE_LIMIT, queries=1).tier == "batched"
        assert plan_for(n=DENSE_LIMIT + 1, queries=1).tier == "scalar"

    def test_streaming_is_incremental(self):
        plan = plan_for(n=8, constraints=2, streaming=True)
        assert plan.tier == "incremental"

    def test_streaming_degenerate_ground_sets_stay_incremental(self):
        # a live session needs live tables even over |S| <= 1
        for n in (0, 1):
            assert plan_for(n=n, streaming=True).tier == "incremental"

    def test_backend_crossover(self):
        planner = default_planner()
        vec, flt = planner.VEC_MIN_N, planner.FLOAT_MIN_N
        assert plan_for(n=vec - 1, queries=1).backend == "exact"
        assert plan_for(n=vec, queries=1).backend == "exact-vec"
        assert plan_for(n=flt - 1, queries=1).backend == "exact-vec"
        assert plan_for(n=flt, queries=1).backend == "float"

    def test_incremental_tier_raises_the_vectorization_bar(self):
        planner = default_planner()
        vec, stream_vec = planner.VEC_MIN_N, planner.VEC_STREAM_MIN_N
        # per-delta maintenance keeps python lists ahead of numpy
        # gather/scatter until tables are much larger (E20)
        assert plan_for(n=vec, streaming=True).backend == "exact"
        # with a nonzero tol the float bar takes over at the same size
        assert plan_for(n=stream_vec, streaming=True).backend == "float"
        # tol=0 streaming at scale gets vectorized exactness
        plan = plan_for(
            n=stream_vec, streaming=True, config=EngineConfig(tol=0.0)
        )
        assert plan.tier == "incremental" and plan.backend == "exact-vec"
        # the sharded tier is rebuild-dominated: low bar applies
        plan = plan_for(
            n=planner.SHARD_MIN_N,
            streaming=True,
            density_size=planner.SHARD_MIN_DENSITY,
            cpus=planner.SHARD_MIN_CPUS,
        )
        assert plan.tier == "sharded" and plan.backend == "exact-vec"

    def test_zero_tolerance_forces_exact(self):
        planner = default_planner()
        # past the float bar, tol=0 still demands exactness: the
        # vectorized exact backend keeps both
        plan = plan_for(
            n=planner.FLOAT_MIN_N + 2,
            queries=1,
            config=EngineConfig(tol=0.0),
        )
        assert plan.backend == "exact-vec"
        # below the vectorization bar it stays on plain python lists
        plan = plan_for(
            n=planner.VEC_MIN_N - 1,
            queries=1,
            config=EngineConfig(tol=0.0),
        )
        assert plan.backend == "exact"

    def test_pinned_backend_wins(self):
        plan = plan_for(n=4, queries=1, config=EngineConfig(backend="float"))
        assert plan.backend == "float"

    def test_shard_bar_needs_cpus_n_and_load(self):
        planner = default_planner()
        base = dict(
            n=planner.SHARD_MIN_N,
            streaming=True,
            density_size=planner.SHARD_MIN_DENSITY,
            cpus=planner.SHARD_MIN_CPUS,
        )
        assert plan_for(**base).tier == "sharded"
        # drop each leg below its threshold: the bar is conjunctive
        assert (
            plan_for(**{**base, "cpus": planner.SHARD_MIN_CPUS - 1}).tier
            == "incremental"
        )
        assert (
            plan_for(**{**base, "n": planner.SHARD_MIN_N - 1}).tier
            == "incremental"
        )
        assert (
            plan_for(
                **{**base, "density_size": planner.SHARD_MIN_DENSITY - 1}
            ).tier
            == "incremental"
        )

    def test_delta_rate_alone_clears_the_load_leg(self):
        planner = default_planner()
        plan = plan_for(
            n=planner.SHARD_MIN_N,
            streaming=True,
            density_size=0,
            delta_rate=planner.SHARD_MIN_DELTA_RATE,
            cpus=planner.SHARD_MIN_CPUS,
        )
        assert plan.tier == "sharded"

    def test_single_cpu_host_never_shards(self):
        plan = plan_for(
            n=16, streaming=True, density_size=10**6, delta_rate=1e6, cpus=1
        )
        assert plan.tier == "incremental"

    def test_sharded_resolution_of_shards_and_workers(self):
        planner = default_planner()
        plan = plan_for(
            n=16, streaming=True, density_size=10**6, cpus=6
        )
        assert plan.tier == "sharded"
        assert plan.shards == min(6, planner.MAX_SHARDS)
        assert plan.workers == min(6, plan.shards)
        capped = plan_for(n=16, streaming=True, density_size=10**6, cpus=64)
        assert capped.shards == planner.MAX_SHARDS

    def test_pinned_workers_capped_by_shards(self):
        plan = plan_for(
            n=16,
            streaming=True,
            config=EngineConfig(engine="sharded", shards=2, workers=16),
        )
        assert plan.workers == 2

    def test_plan_overhead_reasons_and_stamp(self):
        plan = plan_for(n=8, queries=1)
        assert plan.reasons  # --explain has something to print
        assert "tier=batched" in plan.stamp()
        assert plan.as_dict()["tier"] == "batched"
        assert "tier=batched" in plan.explain()


class TestForcedTiersAndValidation:
    def test_every_tier_can_be_forced(self):
        for tier in TIERS:
            plan = plan_for(
                n=6, streaming=True, config=EngineConfig(engine=tier)
            )
            assert plan.tier == tier

    def test_forced_live_tier_past_dense_limit_is_loud(self):
        with pytest.raises(PlanError, match="dense limit"):
            plan_for(
                n=DENSE_LIMIT + 1,
                streaming=True,
                config=EngineConfig(engine="incremental"),
            )

    def test_shards_pinned_on_unsharded_tier_is_loud(self):
        with pytest.raises(PlanError, match="unsharded tier"):
            plan_for(
                n=6,
                streaming=True,
                config=EngineConfig(engine="incremental", shards=3),
            )

    def test_config_validation(self):
        with pytest.raises(PlanError):
            EngineConfig(engine="warp")
        with pytest.raises(PlanError):
            EngineConfig(backend="decimal")
        for ok in ("exact", "exact-vec", "float"):
            assert EngineConfig(backend=ok).backend == ok
        with pytest.raises(PlanError):
            EngineConfig(shards=0)
        with pytest.raises(PlanError):
            EngineConfig(workers=0)
        with pytest.raises(PlanError):
            EngineConfig(fsync="sometimes")
        with pytest.raises(PlanError):
            EngineConfig(snapshot_every=0)
        with pytest.raises(PlanError):
            EngineConfig(cache_size=0)
        with pytest.raises(PlanError):
            Workload(n=-1)
        with pytest.raises(PlanError):
            Workload(n=4, cpus=0)
        with pytest.raises(PlanError):
            Planner(NO_SUCH_THRESHOLD=1)

    def test_from_legacy_reproduces_historic_tiers(self):
        assert EngineConfig.from_legacy().engine == "incremental"
        assert EngineConfig.from_legacy(shards=1).engine == "incremental"
        assert EngineConfig.from_legacy(shards=3).engine == "sharded"
        assert EngineConfig.from_legacy().backend == "exact"
        assert EngineConfig.from_legacy(backend="float").backend == "float"


class TestBuildContext:
    def test_factory_returns_the_plan_tier(self):
        ground = GroundSet("ABCD")
        by_tier = {
            "scalar": EvalContext,
            "batched": EvalContext,
            "incremental": IncrementalEvalContext,
            "sharded": ShardedEvalContext,
        }
        for tier, cls in by_tier.items():
            plan = plan_for(
                n=4, streaming=tier in LIVE_TIERS,
                config=EngineConfig(engine=tier),
            )
            ctx = build_context(plan, ground)
            assert type(ctx) is cls
            # sharded subclasses incremental subclasses EvalContext:
            # assert the exact class, then the tier's distinguishing API
            if tier == "sharded":
                assert ctx.shards == plan.shards
            if tier == "scalar":
                assert ctx.backend is None  # operands keep their storage
            if tier == "batched":
                assert ctx.backend is not None

    def test_live_state_rejected_on_stateless_tiers(self):
        ground = GroundSet("AB")
        plan = plan_for(n=2, queries=1)
        assert plan.tier == "batched"
        with pytest.raises(PlanError, match="stateless"):
            build_context(plan, ground, density={1: 1})

    def test_plan_of_context_round_trips(self):
        ground = GroundSet("ABC")
        for tier in LIVE_TIERS:
            plan = plan_for(
                n=3, streaming=True, config=EngineConfig(engine=tier)
            )
            described = plan_of_context(build_context(plan, ground))
            assert described.tier == tier
            assert described.shards == plan.shards
        assert plan_of_context(EvalContext(backend="exact")).tier == "batched"
        assert plan_of_context(EvalContext()).tier == "scalar"


class TestDecideMethod:
    def test_one_brain_with_the_implication_decider(self):
        planner = default_planner()
        assert planner.decide_method(4, fd_fragment=True)[0] == "fd"
        assert planner.decide_method(4, fd_fragment=False)[0] == "engine"
        assert planner.decide_method(DENSE_LIMIT, False)[0] == "engine"
        assert planner.decide_method(DENSE_LIMIT + 1, False)[0] == "sat"
        # the fd fragment stays P-time past the dense limit
        assert planner.decide_method(DENSE_LIMIT + 1, True)[0] == "fd"

    def test_engine_refusal_names_the_suggested_plan(self):
        from repro.core.implication import find_uncovered_engine

        ground = GroundSet([f"x{i}" for i in range(DENSE_LIMIT + 1)])
        cset = ConstraintSet.of(ground, "x0 -> x1, x2")
        target = cset.constraints[0]
        with pytest.raises(NotApplicableError, match="method='sat'"):
            find_uncovered_engine(cset, target)


class TestDeprecationShims:
    def test_stream_session_legacy_kwargs_warn_and_work(self):
        ground = GroundSet("ABC")
        with pytest.warns(EngineDeprecationWarning, match="backend"):
            session = StreamSession(ground, backend="float", shards=2)
        assert session.plan.tier == "sharded"
        assert session.plan.backend == "float"
        session.insert("AB")
        assert session.support("A") == 1

    def test_config_and_legacy_kwargs_are_mutually_exclusive(self):
        ground = GroundSet("AB")
        with pytest.raises(ValueError, match="not both"):
            StreamSession(
                ground, backend="exact", config=EngineConfig()
            )

    def test_basket_database_shims(self):
        ground = GroundSet("ABC")
        db = BasketDatabase.of(ground, "AB", "C")
        with pytest.warns(EngineDeprecationWarning):
            ctx = db.sharded_context(shards=2)
        assert ctx.shards == 2
        with pytest.warns(EngineDeprecationWarning):
            session = db.stream_session(backend="exact")
        assert session.support("AB") == 1

    def test_fd_checker_shims(self):
        schema = GroundSet("AB")
        fd = FunctionalDependency.of(schema, "A", "B")
        with pytest.warns(EngineDeprecationWarning, match="shards"):
            checker = StreamingFDChecker(schema, [fd], shards=2)
        checker.insert((0, 0))
        report = checker.insert((0, 1))
        assert report.newly_violated
        assert checker.session.plan.tier == "sharded"

    def test_default_construction_does_not_warn(self):
        import warnings

        ground = GroundSet("AB")
        with warnings.catch_warnings():
            warnings.simplefilter("error", EngineDeprecationWarning)
            StreamSession(ground)
            BasketDatabase.of(ground, "A").stream_session()
            StreamingFDChecker(ground, [])


class TestDurableReopen:
    def test_auto_reopen_inherits_the_recorded_backend(self, tmp_path):
        ground = GroundSet("ABC")
        data = str(tmp_path / "data")
        first = StreamSession(
            ground,
            config=EngineConfig(
                engine="incremental", backend="float", durable=data
            ),
        )
        first.insert("AB")
        first.close()
        reopened = StreamSession(ground, config=EngineConfig(durable=data))
        # the plan AND the reported config describe the running backend
        assert reopened.plan.backend == "float"
        assert reopened.config.backend == "float"
        assert reopened.context.backend.name == "float"
        reopened.close()


class TestOnlinePromotion:
    def promoting_planner(self, replan_every=2):
        return Planner(
            SHARD_MIN_CPUS=1,
            SHARD_MIN_N=2,
            SHARD_MIN_DENSITY=3,
            SHARD_MIN_DELTA_RATE=10**9,
            REPLAN_EVERY=replan_every,
        )

    def test_auto_session_promotes_and_state_survives(self):
        ground = GroundSet("ABCD")
        cset = ConstraintSet.of(ground, "A -> B", "C -> D")
        session = StreamSession(
            ground,
            cset.constraints,
            config=EngineConfig(engine="auto"),
            planner=self.promoting_planner(),
        )
        assert session.plan.tier == "incremental"
        before_versions = None
        for subset in ("AB", "AC", "BD", "CD", "A"):
            session.insert(subset)
            if session.promotions == 0:
                before_versions = (
                    session.context.theory_version,
                    session.context.zero_version,
                )
        assert session.promotions == 1
        assert session.plan.tier == "sharded"
        assert isinstance(session.context, ShardedEvalContext)
        # exact handoff: live values and statuses match an unpromoted
        # oracle session fed the identical stream
        oracle = StreamSession(
            ground, cset.constraints,
            config=EngineConfig(engine="incremental"),
        )
        for subset in ("AB", "AC", "BD", "CD", "A"):
            oracle.insert(subset)
        assert session.support("A") == oracle.support("A")
        assert (
            session.violated_constraints() == oracle.violated_constraints()
        )
        # version counters carried over (monotonic for downstream caches)
        assert session.context.theory_version >= before_versions[0]
        assert session.context.zero_version >= before_versions[1]

    def test_pinned_tier_never_promotes(self):
        ground = GroundSet("ABC")
        session = StreamSession(
            ground,
            config=EngineConfig(engine="incremental"),
            planner=self.promoting_planner(),
        )
        for subset in ("A", "B", "C", "AB", "BC", "AC"):
            session.insert(subset)
        assert session.promotions == 0
        assert session.plan.tier == "incremental"

    def test_promotion_pins_the_running_backend(self):
        ground = GroundSet("ABCD")
        session = StreamSession(
            ground,
            config=EngineConfig(engine="auto", backend="float"),
            planner=self.promoting_planner(),
        )
        for subset in ("AB", "AC", "BD", "CD"):
            session.insert(subset)
        assert session.promotions == 1
        assert session.plan.backend == "float"
        assert session.context.backend.name == "float"

    def test_forced_replan_promotes_immediately(self):
        ground = GroundSet("ABC")
        session = StreamSession(
            ground,
            config=EngineConfig(engine="auto"),
            planner=self.promoting_planner(replan_every=10**6),
        )
        for subset in ("A", "B", "C"):
            session.insert(subset)
        assert session.promotions == 0
        session.replan()
        assert session.promotions == 1
        assert session.plan.tier == "sharded"


class TestAffinityAwareCpuDetection:
    """The host-CPU probe must see what the *process* may use, not what
    the box has: ``os.cpu_count()`` overstates parallelism under CPU
    pinning and container quotas, which used to route constrained hosts
    onto the strictly-slower sharded tier (PR 6's 0.33x cold case)."""

    LOADED = dict(
        n=14, streaming=True, density_size=10**6, delta_rate=5000.0
    )

    def test_effective_cpus_prefers_affinity(self, monkeypatch):
        from repro.engine import calibrate

        monkeypatch.setattr(
            calibrate.os, "sched_getaffinity", lambda pid: {0, 1},
            raising=False,
        )
        monkeypatch.setattr(calibrate.os, "cpu_count", lambda: 16)
        assert calibrate.effective_cpus() == 2

    def test_effective_cpus_falls_back_to_cpu_count(self, monkeypatch):
        from repro.engine import calibrate

        def unavailable(pid):
            raise OSError("no affinity syscall on this platform")

        monkeypatch.setattr(
            calibrate.os, "sched_getaffinity", unavailable, raising=False
        )
        monkeypatch.setattr(calibrate.os, "cpu_count", lambda: 3)
        assert calibrate.effective_cpus() == 3

    def test_constrained_host_never_shards(self, monkeypatch):
        # a 16-core box pinned to 2 CPUs must plan like a 2-CPU box:
        # the loaded workload stays incremental and the default worker
        # pool matches the quota, not the core count
        from repro.engine import calibrate
        from repro.engine.parallel import default_workers

        monkeypatch.setattr(
            calibrate.os, "sched_getaffinity", lambda pid: {0, 1},
            raising=False,
        )
        monkeypatch.setattr(calibrate.os, "cpu_count", lambda: 16)
        workload = Workload(**self.LOADED)
        assert workload.host_cpus == 2
        assert default_planner().plan(workload).tier == "incremental"
        assert default_workers() == 2
        assert default_workers(shards=8) == 2

    def test_cpus_pinned_below_the_bar_never_shard(self):
        # the acceptance bar: with cpus pinned below SHARD_MIN_CPUS, no
        # workload -- even maximally loaded -- resolves to sharded
        for cpus in (1, 2, 3):
            plan = plan_for(cpus=cpus, **self.LOADED)
            assert plan.tier == "incremental"
        assert plan_for(cpus=4, **self.LOADED).tier == "sharded"
