"""Tests for the microbatching constraint server.

Correctness against the direct decider is carried by the property suite
(tests/properties/test_shard_equivalence.py); here we pin the serving
mechanics: coalescing, cross-batch memoization, the LRU bound,
version-keyed invalidation against a live instance, and lifecycle.
"""

import asyncio

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet, decide
from repro.engine import ConstraintServer, ShardedEvalContext, serve_queries


@pytest.fixture
def ground() -> GroundSet:
    return GroundSet("ABCD")


@pytest.fixture
def cset(ground) -> ConstraintSet:
    return ConstraintSet.of(ground, "A -> B", "B -> C")


def target(ground, text: str) -> DifferentialConstraint:
    return DifferentialConstraint.parse(ground, text)


class TestServeQueries:
    def test_answers_match_direct_decide(self, ground, cset):
        texts = ["A -> C", "C -> A", "A -> B, CD", "B -> C", "AD -> BC"]
        queries = [("implies", target(ground, t)) for t in texts]
        answers, stats = serve_queries(cset, queries)
        assert answers == [decide(cset, q) for _, q in queries]
        assert stats.requests == len(texts)

    def test_identical_concurrent_queries_coalesce(self, ground, cset):
        t = target(ground, "A -> C")
        # equal constraints built independently share a fingerprint
        queries = [
            ("implies", target(ground, "A -> C")) for _ in range(10)
        ] + [("implies", t)]
        answers, stats = serve_queries(cset, queries)
        assert answers == [True] * 11
        assert stats.computed + stats.cache_hits <= 2
        assert stats.coalesced + stats.cache_hits >= 9

    def test_check_queries_need_an_instance(self, ground, cset):
        with pytest.raises(RuntimeError, match="no live instance"):
            serve_queries(cset, [("check", target(ground, "A -> B"))])

    def test_check_against_sharded_instance(self, ground, cset):
        ctx = ShardedEvalContext(
            ground, density={ground.parse("AC"): 1}, shards=2
        )
        answers, _ = serve_queries(
            cset,
            [("check", c) for c in cset.constraints],
            instance=ctx,
        )
        assert answers == [
            c.satisfied_by(ctx) for c in cset.constraints
        ]

    def test_unknown_kind_rejected(self, ground, cset):
        with pytest.raises(ValueError, match="unknown query kind"):
            serve_queries(cset, [("refute", target(ground, "A -> B"))])


class TestConstraintServer:
    def test_cross_batch_memoization(self, ground, cset):
        async def scenario():
            async with ConstraintServer(cset, max_delay=0.0005) as server:
                first = await server.implies(target(ground, "A -> C"))
                # a later, separate batch: answered from the LRU
                second = await server.implies(target(ground, "A -> C"))
                return first, second, server.stats

        first, second, stats = asyncio.run(scenario())
        assert first is second is True
        assert stats.computed == 1
        assert stats.cache_hits == 1
        assert stats.batches == 2

    def test_lru_bound_evicts(self, ground, cset):
        async def scenario():
            async with ConstraintServer(cset, cache_size=1) as server:
                a = target(ground, "A -> C")
                b = target(ground, "C -> A")
                await server.implies(a)
                await server.implies(b)  # evicts a
                await server.implies(a)  # recomputed
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.computed == 3
        assert stats.cache_hits == 0

    def test_version_keyed_check_invalidation(self, ground, cset):
        ctx = ShardedEvalContext(
            ground, constraints=cset.constraints, shards=2
        )
        c = cset.constraints[0]  # A -> B

        async def scenario():
            async with ConstraintServer(cset, instance=ctx) as server:
                ok_before = await server.check(c)
                cached = await server.check(c)
                ctx.apply_delta(ground.parse("AC"), 1)  # violates A -> B
                ok_after = await server.check(c)
                return ok_before, cached, ok_after, server.stats

        ok_before, cached, ok_after, stats = asyncio.run(scenario())
        assert ok_before is cached is True
        assert ok_after is False  # the stale answer missed on zero_version
        assert stats.cache_hits == 1
        assert stats.computed == 2

    def test_unversioned_instances_are_not_memoized(self, ground, cset):
        from repro.core import SetFunction

        f = SetFunction.zeros(ground, exact=True)

        async def scenario():
            async with ConstraintServer(cset, instance=f) as server:
                a = await server.check(cset.constraints[0])
                b = await server.check(cset.constraints[0])
                return a, b, server.stats

        a, b, stats = asyncio.run(scenario())
        assert a is b is True
        assert stats.cache_hits == 0

    def test_batch_bound_respected(self, ground, cset):
        async def scenario():
            async with ConstraintServer(
                cset, max_batch=2, max_delay=0.05
            ) as server:
                answers = await asyncio.gather(
                    *[server.implies(target(ground, "A -> C")) for _ in range(5)]
                )
                return answers, server.stats

        answers, stats = asyncio.run(scenario())
        assert answers == [True] * 5
        assert stats.batches >= 3  # ceil(5 / 2)

    def test_query_before_start_raises(self, ground, cset):
        server = ConstraintServer(cset)
        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(server.implies(target(ground, "A -> C")))

    def test_double_start_raises(self, cset):
        async def scenario():
            async with ConstraintServer(cset) as server:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()

        asyncio.run(scenario())

    def test_stop_is_idempotent(self, cset):
        async def scenario():
            server = ConstraintServer(cset)
            await server.start()
            await server.stop()
            await server.stop()

        asyncio.run(scenario())

    def test_request_racing_stop_is_still_answered(self, ground, cset):
        """A query enqueued behind the stop sentinel must not hang."""
        from repro.engine.server import _STOP

        async def scenario():
            server = ConstraintServer(cset)
            await server.start()
            # simulate the race: the stop marker reaches the queue
            # before a concurrent request does
            await server._queue.put(_STOP)
            ask = asyncio.create_task(
                server.implies(target(ground, "A -> C"))
            )
            await asyncio.sleep(0.01)  # request lands after the sentinel
            await server.stop()  # must drain and answer the straggler
            return await asyncio.wait_for(ask, timeout=1)

        assert asyncio.run(scenario()) is True

    def test_stats_partition_the_requests(self, ground, cset):
        """requests == coalesced + cache_hits + computed, even when a
        coalesced group is also a cache hit."""

        async def scenario():
            async with ConstraintServer(cset, max_delay=0.005) as server:
                t = target(ground, "A -> C")
                await server.implies(t)  # computed, now cached
                await asyncio.gather(*[server.implies(t) for _ in range(3)])
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.requests == 4
        assert (
            stats.coalesced + stats.cache_hits + stats.computed
            == stats.requests
        )
        assert stats.computed == 1

    def test_bad_max_batch(self, cset):
        with pytest.raises(ValueError):
            ConstraintServer(cset, max_batch=0)

    def test_non_dense_ground_falls_back_to_sat(self):
        """Past the dense limit the server must never build 2^|S| tables
        -- implication answers route through the SAT decider instead."""
        big = GroundSet([f"x{i}" for i in range(25)])
        assert not big.is_dense_capable()
        cset = ConstraintSet.of(big, "x0 -> x1", "x1 -> x2")
        answers, _ = serve_queries(
            cset,
            [
                ("implies", target(big, "x0 -> x2")),
                ("implies", target(big, "x2 -> x0")),
            ],
        )
        assert answers == [True, False]

    def test_constraint_set_server_helper(self, ground, cset):
        async def scenario():
            async with cset.server() as server:
                return await server.implies(target(ground, "A -> C"))

        assert asyncio.run(scenario()) is True
