"""Shard transport: delta shipping, eviction index, shm lifecycle.

Covers the worker-side pieces directly (``_w_apply_deltas`` version
guards and in-place table maintenance, the owner-keyed eviction index,
``_shm_exportable`` / publish / attach / unlink), and the context-level
edges through real executors: ``clear()`` mid-stream forcing a full
reship before delta shipping resumes, worker crash + respawn never
serving a stale shm generation, and ``workers=1`` inline mode being
byte-identical with transport toggled on or off.
"""

from __future__ import annotations

import os
import uuid

import numpy as np
import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.engine import (
    IncrementalEvalContext,
    ParallelExecutor,
    ShardedEvalContext,
    ShmTable,
    WorkerCrashError,
    attach_shm_table,
)
from repro.engine import parallel
from repro.engine.backends import VecTable, backend_by_name
from repro.engine.parallel import (
    _cache_store,
    _shm_exportable,
    _w_apply_deltas,
    _w_clear,
    _w_load,
    _w_publish_tables,
    _w_tables,
)

BACKENDS = ["exact", "exact-vec", "float"]


def _die() -> None:  # must be module-level: shipped to a pool worker
    os._exit(13)


@pytest.fixture
def ns():
    """A throwaway worker namespace, cleared after the test."""
    name = f"test-{uuid.uuid4().hex[:8]}"
    yield name
    _w_clear(name)


def scratch_tables(backend_name, n, items):
    backend = backend_by_name(backend_name)
    density = backend.scatter(1 << n, items)
    support = backend.copy(density)
    backend.superset_zeta_inplace(support)
    return density, support


def tables_equal(a, b):
    return [float(x) for x in a] == [float(x) for x in b]


# ----------------------------------------------------------------------
# owner-keyed eviction index
# ----------------------------------------------------------------------
class TestEvictionIndex:
    def test_reload_evicts_only_the_owner(self, ns):
        """Loading shard k at a new version drops only shard k's stale
        tables; the other shards' cached tables survive untouched."""
        n, backend = 3, "exact"
        for k in range(10):
            _w_load(ns, "", k, 1, "density", [(k % (1 << n), 1)])
            _w_tables(ns, "", k, 1, n, backend)
        keys = {k: (ns, "", k, 1, backend) for k in range(10)}
        assert all(key in parallel._TABLE_CACHE for key in keys.values())
        before = {k: parallel._TABLE_CACHE[key] for k, key in keys.items()}

        _w_load(ns, "", 3, 2, "density", [(1, 2)])
        assert keys[3] not in parallel._TABLE_CACHE
        for k in range(10):
            if k == 3:
                continue
            assert parallel._TABLE_CACHE[keys[k]] is before[k]

    def test_eviction_never_scans_the_whole_cache(self, ns, monkeypatch):
        """Regression: eviction used to linear-scan ``_TABLE_CACHE``;
        with the owner index installed, a reload must not iterate the
        cache at all (guarded by a dict subclass that forbids it)."""

        class NoScan(dict):
            def __iter__(self):
                raise AssertionError("full _TABLE_CACHE scan on load")

            def keys(self):
                raise AssertionError("full _TABLE_CACHE scan on load")

            def items(self):
                raise AssertionError("full _TABLE_CACHE scan on load")

        for k in range(50):
            _w_load(ns, "", k, 1, "density", [(0, 1)])
            _w_tables(ns, "", k, 1, 2, "exact")
        monkeypatch.setattr(
            parallel, "_TABLE_CACHE", NoScan(parallel._TABLE_CACHE)
        )
        _w_load(ns, "", 7, 2, "density", [(1, 1)])  # must not raise
        assert (ns, "", 7, 1, "exact") not in parallel._TABLE_CACHE
        assert (ns, "", 8, 1, "exact") in parallel._TABLE_CACHE

    def test_index_entry_removed_when_owner_empties(self, ns):
        _w_load(ns, "", 0, 1, "density", [(0, 1)])
        _w_tables(ns, "", 0, 1, 2, "exact")
        assert (ns, "", 0) in parallel._TABLE_INDEX
        _w_load(ns, "", 0, 2, "density", [(0, 2)])
        # version 2 has no cached tables yet: the owner set is empty
        # and the index entry is gone (no leak of empty sets)
        assert (ns, "", 0) not in parallel._TABLE_INDEX


# ----------------------------------------------------------------------
# delta application (worker side)
# ----------------------------------------------------------------------
class TestApplyDeltas:
    def test_unknown_shard_returns_false(self, ns):
        assert _w_apply_deltas(ns, "", 0, 0, 1, "exact", [(1, 1)]) is False

    def test_version_mismatch_returns_false(self, ns):
        _w_load(ns, "", 0, 5, "density", [(1, 1)])
        assert _w_apply_deltas(ns, "", 0, 4, 6, "exact", [(2, 1)]) is False
        # payload untouched by the refused update
        assert parallel._SHARD_DATA[ns, "", 0] == (5, "density", [(1, 1)])

    def test_applies_records_and_pops_zeros(self, ns):
        _w_load(ns, "", 0, 1, "density", [(1, 2), (3, 1)])
        ok = _w_apply_deltas(
            ns, "", 0, 1, 2, "exact", [(1, -2), (4, 5), (3, 1)]
        )
        assert ok is True
        version, kind, data = parallel._SHARD_DATA[ns, "", 0]
        # the payload becomes a mutable map so later batches are O(gap)
        assert (version, kind) == (2, "densmap")
        assert sorted(data.items()) == [(3, 2), (4, 5)]  # mask 1 zeroed out

    def test_aggregates_row_payloads_before_applying(self, ns):
        _w_load(ns, "", 0, 1, "rows", [2, 2, 5])
        assert _w_apply_deltas(ns, "", 0, 1, 2, "exact", [(5, -1)]) is True
        _version, kind, data = parallel._SHARD_DATA[ns, "", 0]
        assert kind == "densmap" and sorted(data.items()) == [(2, 2)]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_maintains_cached_tables_in_place(self, ns, backend_name):
        n = 3
        base_items = [(1, 2), (6, 1)]
        records = [(1, -1), (4, 3), (6, -1)]
        _w_load(ns, "", 0, 1, "density", base_items)
        _w_tables(ns, "", 0, 1, n, backend_name)
        assert _w_apply_deltas(ns, "", 0, 1, 2, backend_name, records)

        new_key = (ns, "", 0, 2, backend_name)
        assert new_key in parallel._TABLE_CACHE  # maintained, not dropped
        assert (ns, "", 0, 1, backend_name) not in parallel._TABLE_CACHE
        density, support, nnz = parallel._TABLE_CACHE[new_key]
        want_items = [(1, 1), (4, 3)]
        want_density, want_support = scratch_tables(backend_name, n, want_items)
        assert tables_equal(density, want_density)
        assert tables_equal(support, want_support)
        assert nnz == len(want_items)

    def test_without_cached_tables_only_payload_moves(self, ns):
        _w_load(ns, "", 0, 1, "density", [(1, 1)])
        assert _w_apply_deltas(ns, "", 0, 1, 2, "exact", [(2, 1)])
        assert (ns, "", 0, 2, "exact") not in parallel._TABLE_CACHE
        # tables built on demand afterwards agree with the new payload
        density, _support, nnz = _w_tables(ns, "", 0, 2, 2, "exact")
        assert list(density) == [0, 1, 1, 0] and nnz == 2


# ----------------------------------------------------------------------
# shared-memory export / publish / attach lifecycle
# ----------------------------------------------------------------------
class TestShmExportable:
    def test_int64_vec_table_exports_its_array(self):
        table = VecTable(np.array([1, 2], dtype=np.int64))
        assert _shm_exportable(table) is table.arr

    def test_object_promoted_vec_table_is_pickle_only(self):
        table = VecTable(np.array([1, 2], dtype=np.int64))
        table[0] = 1 << 70  # forces object-dtype promotion
        assert table.is_object
        assert _shm_exportable(table) is None

    def test_float64_ndarray_exports(self):
        arr = np.array([1.0, 2.0], dtype=np.float64)
        assert _shm_exportable(arr) is arr

    def test_other_dtypes_and_lists_are_pickle_only(self):
        assert _shm_exportable(np.array([1, 2], dtype=np.int32)) is None
        assert _shm_exportable([1, 2, 3]) is None


class TestShmLifecycle:
    def test_publish_attach_roundtrip_and_readonly(self, ns):
        vec = VecTable(np.array([3, 0, -1, 7], dtype=np.int64))
        flt = np.array([0.5, 2.0], dtype=np.float64)
        out = _w_publish_tables(ns, "", 0, 1, "exact-vec", (), [vec, flt, [9]])
        assert isinstance(out[0], ShmTable)
        assert isinstance(out[1], ShmTable)
        assert out[2] == [9]  # per-table pickle fallback rides along

        table, segment = attach_shm_table(out[0])
        assert isinstance(table, VecTable)
        assert list(table.arr) == [3, 0, -1, 7]
        with pytest.raises(ValueError):
            table.arr[0] = 99  # attached views are read-only
        del table
        segment.close()

        table, segment = attach_shm_table(out[1])
        assert isinstance(table, np.ndarray)
        assert list(table) == [0.5, 2.0]
        del table
        segment.close()

    def test_republish_same_version_reuses_segments(self, ns):
        vec = VecTable(np.array([1, 2], dtype=np.int64))
        first = _w_publish_tables(ns, "", 0, 1, "exact-vec", (), [vec])
        second = _w_publish_tables(ns, "", 0, 1, "exact-vec", (), [vec])
        assert first[0].name == second[0].name

    def test_republish_new_version_unlinks_old_generation(self, ns):
        vec = VecTable(np.array([1, 2], dtype=np.int64))
        first = _w_publish_tables(ns, "", 0, 1, "exact-vec", (), [vec])
        old = first[0].name
        second = _w_publish_tables(ns, "", 0, 2, "exact-vec", (), [vec])
        assert second[0].name != old
        with pytest.raises(FileNotFoundError):
            parallel._attach_segment(old)

    def test_clear_unlinks_published_segments(self, ns):
        vec = VecTable(np.array([1, 2], dtype=np.int64))
        out = _w_publish_tables(ns, "", 0, 1, "exact-vec", (), [vec])
        name = out[0].name
        _w_clear(ns)
        with pytest.raises(FileNotFoundError):
            parallel._attach_segment(name)

    def test_generation_guard_rejects_stale_segment(self):
        from repro.engine.parallel import ShardAnswer

        ground = GroundSet("AB")
        ctx = ShardedEvalContext(ground, shards=1)
        ctx.apply_delta(1, 1)  # shard 0 now at version 1
        stale = ShardAnswer(
            shard_id=0,
            version=0,
            nnz=0,
            verdicts=(),
            probes=(),
            density_table=ShmTable("no-such-segment", "<i8", 4, 32, 0),
            support_table=[0, 0, 0, 0],
            differential_tables=(),
        )
        with pytest.raises(RuntimeError, match="stale segment"):
            ctx._merge_answer_tables([stale], ())


# ----------------------------------------------------------------------
# context-level edges through real executors
# ----------------------------------------------------------------------
def oracle_tables(ground, items, backend_name):
    plain = IncrementalEvalContext(ground, backend=backend_name)
    for mask, delta in items:
        plain.apply_delta(mask, delta)
    return plain


class TestEpochAndResync:
    def test_clear_mid_stream_full_reship_then_delta_resume(self):
        ground = GroundSet("ABC")
        applied = []

        def push(ctx, pairs):
            for mask, delta in pairs:
                ctx.apply_delta(mask, delta)
                applied.append((mask, delta))

        with ParallelExecutor(workers=2) as ex:
            ctx = ShardedEvalContext(ground, shards=2, executor=ex)
            push(ctx, [(1, 1), (2, 2), (5, 1)])
            ctx.evaluate(return_tables=True)  # first load: the baseline
            stats = ctx.transport_stats()
            assert stats["full_resyncs"] == 0  # first load is not a fallback

            push(ctx, [(1, 1), (6, -1)])
            ctx.evaluate(return_tables=True)
            shipped = ctx.transport_stats()["deltas_shipped"]
            assert shipped >= 2  # the dirty shards went by delta

            ex.clear()  # mid-stream: workers forget everything
            push(ctx, [(3, 4)])
            ctx.evaluate(return_tables=True)
            stats = ctx.transport_stats()
            assert stats["full_resyncs"] >= 1  # epoch moved: full reship
            assert stats["deltas_shipped"] == shipped

            push(ctx, [(3, 1)])
            result = ctx.evaluate(return_tables=True)
            assert (
                ctx.transport_stats()["deltas_shipped"] > shipped
            )  # delta shipping resumed after the reship

            plain = oracle_tables(ground, applied, "exact")
            assert list(result.density_table) == list(plain.density_table())

    def test_worker_crash_respawn_never_serves_stale_generation(self):
        ground = GroundSet("ABCD")
        with ParallelExecutor(workers=2) as ex:
            ctx = ShardedEvalContext(
                ground, shards=2, backend="exact-vec", executor=ex
            )
            applied = [(m, (m % 3) + 1) for m in range(0, 16, 2)]
            for mask, delta in applied:
                ctx.apply_delta(mask, delta)
            ctx.evaluate(return_tables=True)  # publishes shm segments
            assert ctx.transport_stats()["shm_bytes"] > 0
            old_names = [
                name for names in ex._segments.values() for name in names
            ]
            assert old_names
            epoch = ex.epoch

            with pytest.raises(WorkerCrashError):
                ex._run([(0, _die, ())])
            assert ex.epoch == epoch + 1
            for name in old_names:  # crash cleanup unlinked them
                assert not os.path.exists(f"/dev/shm/{name}")

            ctx.apply_delta(1, 7)
            applied.append((1, 7))
            result = ctx.evaluate(return_tables=True)  # no stale generation
            plain = oracle_tables(ground, applied, "exact-vec")
            assert list(result.density_table) == list(plain.density_table())
            assert list(result.support_table) == list(plain.support_table())
            assert ctx.transport_stats()["full_resyncs"] >= 2

    def test_inline_mode_byte_identical_transport_on_off(self):
        ground = GroundSet("ABC")
        fam = SetFamily(ground, [1, 2])
        constraint = DifferentialConstraint(ground, 3, fam)
        deltas = [(1, 1), (3, -2), (5, 4), (1, -1), (7, 2)]
        results = []
        for kwargs in (
            {"shm_tables": True},
            {"shm_tables": False},
            {"sync": "reship"},
            {"sync": "delta", "journal_bound": 1},
        ):
            with ParallelExecutor(workers=1) as ex:
                ctx = ShardedEvalContext(
                    ground,
                    constraints=[constraint],
                    shards=3,
                    executor=ex,
                    **kwargs,
                )
                for mask, delta in deltas:
                    ctx.apply_delta(mask, delta)
                r = ctx.evaluate(
                    probes=[1, 6], families=[fam], return_tables=True
                )
                results.append(
                    (
                        r.violated,
                        dict(r.support),
                        list(r.density_table),
                        list(r.support_table),
                        list(r.differential_tables[tuple(fam.members)]),
                    )
                )
                assert ctx.transport_stats()["shm_bytes"] == 0  # inline
        assert all(r == results[0] for r in results[1:])


class TestTransportConfigAndStats:
    def test_bad_sync_strategy_rejected(self):
        with pytest.raises(ValueError, match="sync strategy"):
            ShardedEvalContext(GroundSet("AB"), sync="bogus")

    def test_bad_journal_bound_rejected(self):
        with pytest.raises(ValueError, match="journal bound"):
            ShardedEvalContext(GroundSet("AB"), journal_bound=0)

    def test_stats_shape_per_shard(self):
        ctx = ShardedEvalContext(GroundSet("AB"), shards=3, journal_bound=64)
        stats = ctx.transport_stats()
        assert stats["sync"] == "delta" and stats["journal_bound"] == 64
        assert stats["deltas_shipped"] == 0
        assert stats["full_resyncs"] == 0
        assert stats["shm_bytes"] == 0
        assert [s["shard"] for s in stats["per_shard"]] == [0, 1, 2]
        for entry in stats["per_shard"]:
            assert set(entry) == {
                "shard", "deltas_shipped", "full_resyncs", "shm_bytes",
            }

    def test_journal_overflow_counts_a_full_resync(self):
        ground = GroundSet("ABC")
        with ParallelExecutor(workers=1) as ex:
            ctx = ShardedEvalContext(
                ground, shards=1, executor=ex, journal_bound=4
            )
            ctx.apply_delta(1, 1)
            ctx.sync_executor()
            for i in range(6):  # exceeds the bound of 4
                ctx.apply_delta(i, 1)
            ctx.sync_executor()
            stats = ctx.transport_stats()
            assert stats["full_resyncs"] == 1
            assert stats["deltas_shipped"] == 0

    def test_object_promotion_forces_reship_then_recovers(self):
        ground = GroundSet("AB")
        with ParallelExecutor(workers=1) as ex:
            ctx = ShardedEvalContext(
                ground, shards=1, backend="exact-vec", executor=ex
            )
            ctx.apply_delta(1, 1)
            ctx.sync_executor()
            ctx.apply_delta(2, 1 << 70)  # int64 cannot hold this delta
            ctx.sync_executor()
            stats = ctx.transport_stats()
            assert stats["full_resyncs"] == 1  # journal marked unsafe
            # the unsafe flag cleared with the reship: small deltas
            # ship incrementally again
            ctx.apply_delta(3, 1)
            ctx.sync_executor()
            stats = ctx.transport_stats()
            assert stats["deltas_shipped"] == 1
            assert stats["full_resyncs"] == 1
