"""Tests for the Dempster-Shafer substrate and its constraint bridge."""

import random

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFunction
from repro.fis import is_frequency_function
from repro.instances import random_constraint
from repro.measures import MassFunction, bayesian_mass, random_mass, vacuous_mass


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABCD")


@pytest.fixture
def m(s) -> MassFunction:
    return MassFunction(s, {"AB": 0.5, "BCD": 0.3, "B": 0.2})


class TestValidation:
    def test_mass_sums_to_one(self, s):
        with pytest.raises(ValueError):
            MassFunction(s, {"A": 0.5})

    def test_no_mass_on_empty(self, s):
        with pytest.raises(ValueError):
            MassFunction(s, {"": 0.5, "A": 0.5})

    def test_negative_mass_rejected(self, s):
        with pytest.raises(ValueError):
            MassFunction(s, {"A": 1.5, "B": -0.5})

    def test_focal_elements(self, m, s):
        assert m.focal_elements() == tuple(
            sorted([s.parse("AB"), s.parse("BCD"), s.parse("B")])
        )


class TestClassicIdentities:
    def test_belief_plausibility_duality(self, s, rng):
        """Pl(X) = 1 - Bel(S - X)."""
        for _ in range(20):
            m = random_mass(s, rng)
            for x in s.all_masks():
                assert m.plausibility(x) == pytest.approx(
                    1.0 - m.belief(s.complement(x))
                )

    def test_belief_below_plausibility(self, s, rng):
        for _ in range(10):
            m = random_mass(s, rng)
            for x in s.all_masks():
                assert m.belief(x) <= m.plausibility(x) + 1e-12

    def test_bounds(self, m, s):
        assert m.belief(0) == 0.0
        assert m.belief(s.universe_mask) == pytest.approx(1.0)
        assert m.commonality(0) == pytest.approx(1.0)

    def test_belief_function_matches_pointwise(self, s, rng):
        for _ in range(10):
            m = random_mass(s, rng)
            bel = m.belief_function()
            for x in s.all_masks():
                assert bel.value(x) == pytest.approx(m.belief(x))

    def test_mass_belief_roundtrip(self, s, rng):
        for _ in range(10):
            m = random_mass(s, rng)
            back = MassFunction.from_belief(m.belief_function())
            for x in s.all_masks():
                assert back.mass(x) == pytest.approx(m.mass(x), abs=1e-9)

    def test_mass_commonality_roundtrip(self, s, rng):
        for _ in range(10):
            m = random_mass(s, rng)
            back = MassFunction.from_commonality(m.commonality_function())
            for x in s.all_masks():
                assert back.mass(x) == pytest.approx(m.mass(x), abs=1e-9)


class TestBridgeToFrequencyFunctions:
    def test_commonality_is_frequency_function(self, s, rng):
        """The density of Q is the mass -- nonnegative, summing to 1."""
        for _ in range(15):
            m = random_mass(s, rng)
            q = m.commonality_function()
            assert is_frequency_function(q, tol=1e-9)
            assert q.value(0) == pytest.approx(1.0)
            d = q.density()
            for x in s.all_masks():
                assert d.value(x) == pytest.approx(m.mass(x), abs=1e-9)

    def test_satisfies_matches_commonality_function(self, s, rng):
        for _ in range(20):
            m = random_mass(s, rng)
            q = m.commonality_function()
            for _ in range(8):
                c = random_constraint(rng, s, max_members=2)
                assert m.satisfies(c) == c.satisfied_by(q, tol=1e-9)

    def test_vacuous_mass_satisfies_nonempty_families(self, s, rng):
        """Total ignorance: only the frame is focal; S is in no lattice
        with a nonempty family."""
        m = vacuous_mass(s)
        for _ in range(20):
            c = random_constraint(rng, s, max_members=2, min_members=1)
            assert m.satisfies(c)
        empty_family = DifferentialConstraint.parse(s, "A -> ")
        assert not m.satisfies(empty_family)

    def test_bayesian_mass_constraints(self, s):
        """Bayesian masses are focal on singletons: a constraint is
        satisfied iff its lattice avoids the supported singletons."""
        m = bayesian_mass(s, {"A": 0.5, "B": 0.5})
        assert m.satisfies(DifferentialConstraint.parse(s, "C -> D"))
        assert not m.satisfies(DifferentialConstraint.parse(s, "A -> B"))

    def test_bayesian_requires_singletons(self, s):
        with pytest.raises(ValueError):
            bayesian_mass(s, {"AB": 1.0})


class TestDempsterCombination:
    def test_vacuous_is_identity(self, s, rng):
        for _ in range(10):
            m = random_mass(s, rng)
            combined = m.combine(vacuous_mass(s))
            for x in s.all_masks():
                assert combined.mass(x) == pytest.approx(m.mass(x), abs=1e-9)

    def test_commutative(self, s, rng):
        for _ in range(10):
            a, b = random_mass(s, rng), random_mass(s, rng)
            try:
                ab, ba = a.combine(b), b.combine(a)
            except ValueError:
                continue
            for x in s.all_masks():
                assert ab.mass(x) == pytest.approx(ba.mass(x), abs=1e-9)

    def test_commonalities_multiply(self, s, rng):
        """Q12 = K * Q1 * Q2 -- Shafer's multiplicativity theorem."""
        for _ in range(15):
            a, b = random_mass(s, rng), random_mass(s, rng)
            conflict = a.conflict_with(b)
            if conflict >= 1.0 - 1e-9:
                continue
            combined = a.combine(b)
            scale = 1.0 / (1.0 - conflict)
            for x in s.all_masks():
                if x == 0:
                    continue
                assert combined.commonality(x) == pytest.approx(
                    scale * a.commonality(x) * b.commonality(x), abs=1e-9
                )

    def test_commonality_zeros_preserved(self, s, rng):
        """Q12 = K Q1 Q2: the zero set of Q only grows -- support-style
        constraints f(X) = 0 survive combination."""
        for _ in range(15):
            a, b = random_mass(s, rng), random_mass(s, rng)
            try:
                combined = a.combine(b)
            except ValueError:
                continue
            for x in s.all_masks():
                if a.commonality(x) < 1e-12 or b.commonality(x) < 1e-12:
                    assert combined.commonality(x) < 1e-9

    def test_differential_constraints_not_closed_under_combination(self, s):
        """Evidence fusion can violate a differential constraint both
        operands satisfy: focal intersections may land inside L(X, Y)."""
        c = DifferentialConstraint.parse(s, "A -> B, C")
        a = MassFunction(s, {"AB": 1.0})
        b = MassFunction(s, {"AC": 1.0})
        assert a.satisfies(c) and b.satisfies(c)
        combined = a.combine(b)
        assert combined.focal_elements() == (s.parse("A"),)
        assert not combined.satisfies(c)

    def test_total_conflict_raises(self, s):
        a = MassFunction(s, {"A": 1.0})
        b = MassFunction(s, {"B": 1.0})
        with pytest.raises(ValueError):
            a.combine(b)
