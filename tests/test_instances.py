"""Tests for the shared random-instance generators."""

import random

import pytest

from repro.core import GroundSet
from repro.core.implication import implies_lattice
from repro.instances import (
    random_constraint,
    random_constraint_set,
    random_dnf,
    random_family,
    random_implied_pair,
    random_mask,
    random_nonempty_mask,
    random_nonneg_density_function,
    random_set_function,
)


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABCDE")


class TestMasks:
    def test_determinism(self, s):
        a = [random_mask(random.Random(1), s) for _ in range(10)]
        b = [random_mask(random.Random(1), s) for _ in range(10)]
        assert a == b

    def test_nonempty(self, s):
        rng = random.Random(2)
        for _ in range(50):
            assert random_nonempty_mask(rng, s) != 0

    def test_probability_extremes(self, s):
        rng = random.Random(3)
        assert random_mask(rng, s, 0.0) == 0
        assert random_mask(rng, s, 1.0) == s.universe_mask


class TestFamiliesAndConstraints:
    def test_family_bounds(self, s):
        rng = random.Random(4)
        for _ in range(30):
            fam = random_family(rng, s, max_members=3, min_members=1)
            assert 1 <= len(fam) <= 3
            assert all(m != 0 for m in fam)

    def test_empty_members_only_when_allowed(self, s):
        rng = random.Random(5)
        seen_empty = False
        for _ in range(200):
            fam = random_family(rng, s, max_members=3, allow_empty_member=True)
            if 0 in fam.members:
                seen_empty = True
        assert seen_empty

    def test_constraint_set_size(self, s):
        rng = random.Random(6)
        cs = random_constraint_set(rng, s, 4, max_members=2)
        assert len(cs) <= 4  # deduplication may shrink it
        assert len(cs) >= 1


class TestImpliedPairs:
    def test_always_implied(self, s):
        rng = random.Random(7)
        for mode in ("atoms", "decomp", "self"):
            for _ in range(15):
                cset, target = random_implied_pair(rng, s, mode=mode)
                assert implies_lattice(cset, target), mode

    def test_unknown_mode(self, s):
        with pytest.raises(ValueError):
            random_implied_pair(random.Random(8), s, mode="nope")


class TestFunctions:
    def test_set_function_range(self, s):
        rng = random.Random(9)
        f = random_set_function(rng, s, low=-1, high=1)
        assert all(-1 <= f.value(m) <= 1 for m in s.all_masks())

    def test_nonneg_density(self, s):
        rng = random.Random(10)
        for integral in (False, True):
            f = random_nonneg_density_function(rng, s, integral=integral)
            assert f.is_nonnegative_density()

    def test_integral_density_is_support(self, s):
        from repro.fis import is_support_function

        rng = random.Random(11)
        f = random_nonneg_density_function(rng, s, integral=True)
        assert is_support_function(f)


class TestDnf:
    def test_terms_disjoint_literals(self, s):
        rng = random.Random(12)
        for _ in range(30):
            for pos, neg in random_dnf(rng, s, 5):
                assert pos & neg == 0


class TestSatisfyingFunctions:
    def test_sampled_functions_satisfy(self, s):
        from repro.instances import (
            random_constraint_set,
            random_satisfying_function,
        )

        rng = random.Random(13)
        for _ in range(20):
            cset = random_constraint_set(rng, s, 3, max_members=2)
            f = random_satisfying_function(rng, cset)
            assert cset.satisfied_by(f)
            assert f.is_nonnegative_density()

    def test_integral_mode_gives_support_functions(self, s):
        from repro.fis import is_support_function
        from repro.instances import (
            random_constraint_set,
            random_satisfying_function,
        )

        rng = random.Random(14)
        cset = random_constraint_set(rng, s, 2, max_members=2)
        f = random_satisfying_function(rng, cset, integral=True)
        assert is_support_function(f)

    def test_usually_violates_non_consequences(self, s):
        """With low zero-probability the sample approximates the
        Armstrong witness: most non-implied constraints are violated."""
        from repro.core import ConstraintSet
        from repro.core.implication import implies_lattice
        from repro.instances import (
            random_constraint,
            random_satisfying_function,
        )

        rng = random.Random(15)
        cset = ConstraintSet.of(s, "A -> B")
        f = random_satisfying_function(rng, cset, zero_probability=0.0)
        violated = checked = 0
        for _ in range(60):
            c = random_constraint(rng, s, max_members=2)
            if implies_lattice(cset, c):
                assert c.satisfied_by(f)
            else:
                checked += 1
                violated += not c.satisfied_by(f)
        assert checked > 0
        assert violated == checked  # zero_probability=0 is exactly Armstrong
