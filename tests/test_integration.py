"""Cross-package integration scenarios.

Each test threads one object through several subsystems, checking that
the paper's equivalences hold *end to end* rather than per module.
"""

import random

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    armstrong_database,
    check_proof,
    decide,
    derive,
)
from repro.fis import (
    BasketDatabase,
    DisjunctiveConstraint,
    FrequencyConstraint,
    correlated_baskets,
    discover_cover,
    induce_basket_database,
    measure_sat,
    mine_concise,
    minimal_disjunctive_rules,
    random_baskets,
    support_sat,
    theory_of,
    verify_lossless,
)
from repro.measures import MassFunction, random_mass
from repro.relational import (
    BooleanDependency,
    Distribution,
    FunctionalDependency,
    implies_boolean,
    random_probabilistic_relation,
    relation_satisfying_fds,
    simpson_function,
    simpson_satisfies,
)


class TestMineReasonRealizeLoop:
    """data -> discovered theory -> implication -> Armstrong data."""

    def test_full_loop(self, ground_abcd, rng):
        db = correlated_baskets(ground_abcd, 40, 2, 3, 0.05, 0.05, rng)
        f = db.support_function()

        # 1. discover a cover of everything the data satisfies
        cover = discover_cover(db)
        assert all(c.satisfied_by(f) for c in cover)

        # 2. the cover axiomatizes satisfaction (spot-check via implication)
        from repro.instances import random_constraint

        for _ in range(20):
            c = random_constraint(rng, ground_abcd, max_members=2)
            assert c.satisfied_by(f) == decide(cover, c, "lattice")

        # 3. the Armstrong database of the cover has the same theory
        generic = armstrong_database(cover)
        for _ in range(20):
            c = random_constraint(rng, ground_abcd, max_members=2)
            disj = DisjunctiveConstraint.from_differential(c)
            assert disj.satisfied_by(generic) == c.satisfied_by(f)

    def test_rules_feed_derivations(self, ground_abcd, rng):
        """Discovered minimal rules + the proof engine: any satisfied
        singleton rule is derivable from the minimal ones."""
        db = random_baskets(ground_abcd, 10, 0.45, rng)
        minimal = minimal_disjunctive_rules(db, max_rhs=2)
        if not minimal:
            pytest.skip("no rules in this draw")
        cset = ConstraintSet(
            ground_abcd, [r.to_differential() for r in minimal]
        )
        from repro.fis.disjunctive_free import holds_singleton_rule
        import repro.core.subsets as sb
        from repro.core.family import SetFamily

        universe = ground_abcd.universe_mask
        checked = 0
        for rhs in range(1, universe + 1):
            if sb.popcount(rhs) > 2:
                continue
            for lhs in sb.iter_subsets(universe & ~rhs):
                if not holds_singleton_rule(db, lhs, rhs):
                    continue
                target = DifferentialConstraint(
                    ground_abcd, lhs, SetFamily.singletons_of(ground_abcd, rhs)
                )
                if decide(cset, target, "lattice"):
                    proof = derive(cset, target, check=False)
                    check_proof(proof, cset.constraints)
                    checked += 1
                if checked >= 5:
                    return


class TestRelationalToFisLoop:
    """relations -> Simpson world -> basket world agreement."""

    def test_implication_agrees_across_worlds(self, ground_abcd, rng):
        from repro.instances import random_constraint

        for _ in range(15):
            premises = [
                random_constraint(rng, ground_abcd, max_members=2, min_members=1)
                for _ in range(2)
            ]
            target = random_constraint(
                rng, ground_abcd, max_members=2, min_members=1
            )
            boolean = implies_boolean(
                [BooleanDependency.from_differential(c) for c in premises],
                BooleanDependency.from_differential(target),
            )
            from repro.fis import implies_disjunctive

            disjunctive = implies_disjunctive(
                [DisjunctiveConstraint.from_differential(c) for c in premises],
                DisjunctiveConstraint.from_differential(target),
            )
            assert boolean == disjunctive

    def test_fd_repair_to_simpson_to_constraints(self, ground_abcd, rng):
        fds = [
            FunctionalDependency.parse(ground_abcd, "A -> B"),
            FunctionalDependency.parse(ground_abcd, "B -> CD"),
        ]
        r = relation_satisfying_fds(ground_abcd, fds, 12, 3, rng)
        dist = Distribution.uniform(r)
        for fd in fds:
            # the Simpson function satisfies the corresponding constraint
            assert simpson_satisfies(dist, fd.to_differential())
        # and the FD closure consequences transfer
        consequence = FunctionalDependency.parse(ground_abcd, "A -> CD")
        assert simpson_satisfies(dist, consequence.to_differential())


class TestMeasureToBasketLoop:
    """mass functions -> scaled support functions -> basket lists."""

    def test_scaled_mass_realizes_as_baskets(self, ground_abcd, rng):
        m = random_mass(ground_abcd, rng, n_focal=3)
        # scale to integers: multiply each focal mass by a common factor
        from repro.core import SetFunction

        scaled = {
            u: round(m.mass(u) * 1000) for u in m.focal_elements()
        }
        f = SetFunction.from_density(ground_abcd, scaled, exact=True)
        db = induce_basket_database(f)
        # the database's satisfied constraints match the mass's
        from repro.instances import random_constraint

        sb_fn = db.support_function()
        for _ in range(15):
            c = random_constraint(rng, ground_abcd, max_members=2, min_members=1)
            assert c.satisfied_by(sb_fn) == m.satisfies(c)

    def test_freqsat_witness_respects_discovered_theory(self, ground_abcd, rng):
        """Constrain the LP with a mined cover: the witness's theory
        includes the mined constraints."""
        db = correlated_baskets(ground_abcd, 30, 2, 3, 0.1, 0.05, rng)
        cover = discover_cover(db)
        nonfull = [c for c in cover if len(c.family) >= 1]
        witness = measure_sat(
            ground_abcd,
            [FrequencyConstraint(0, 10, 10)],
            nonfull,
        )
        assert witness is not None
        for c in nonfull:
            assert c.satisfied_by(witness, tol=1e-7)


class TestConciseRepresentationRoundTrip:
    def test_concise_reconstructs_support_function(self, ground_abcd, rng):
        """Derive every support from (FDFree, Bd-), rebuild the function,
        and check constraint satisfaction transfers."""
        db = random_baskets(ground_abcd, 20, 0.5, rng)
        rep = mine_concise(db, 1, max_rhs=2)
        assert verify_lossless(db, rep)
        # at kappa=1 every nonempty-support set is "frequent": rebuild
        rebuilt = {}
        for mask in ground_abcd.all_masks():
            status, support = rep.derive(mask)
            rebuilt[mask] = support if support is not None else 0
        for mask in ground_abcd.all_masks():
            assert rebuilt[mask] == db.support(mask)
