"""Unit tests for DNF tautology and the Prop 5.5 reduction."""

import pytest

from repro.core import GroundSet
from repro.instances import random_dnf
from repro.logic import (
    dnf_evaluate,
    dnf_to_constraint_set,
    everything_constraint,
    is_tautology_bruteforce,
    is_tautology_via_differential,
    term_satisfied,
)


class TestDnfBasics:
    def test_term_satisfied(self, ground_abc):
        term = (ground_abc.parse("A"), ground_abc.parse("B"))  # A and not B
        assert term_satisfied(term, ground_abc.parse("AC"))
        assert not term_satisfied(term, ground_abc.parse("AB"))
        assert not term_satisfied(term, ground_abc.parse("C"))

    def test_evaluate(self, ground_abc):
        terms = [(ground_abc.parse("A"), 0), (0, ground_abc.parse("A"))]
        # "A or not A" -- a tautology
        for mask in ground_abc.all_masks():
            assert dnf_evaluate(terms, mask)

    def test_bruteforce_tautology(self, ground_abc):
        taut = [(ground_abc.parse("A"), 0), (0, ground_abc.parse("A"))]
        assert is_tautology_bruteforce(taut, ground_abc)
        not_taut = [(ground_abc.parse("A"), 0)]
        assert not is_tautology_bruteforce(not_taut, ground_abc)

    def test_empty_dnf_not_tautology(self, ground_abc):
        assert not is_tautology_bruteforce([], ground_abc)

    def test_empty_term_is_tautology(self, ground_abc):
        assert is_tautology_bruteforce([(0, 0)], ground_abc)


class TestReduction:
    def test_constraint_shape(self, ground_abc):
        terms = [(ground_abc.parse("A"), ground_abc.parse("BC"))]
        cset = dnf_to_constraint_set(terms, ground_abc)
        (c,) = cset.constraints
        assert c.lhs == ground_abc.parse("A")
        assert set(c.family.members) == {
            ground_abc.parse("B"),
            ground_abc.parse("C"),
        }

    def test_everything_constraint(self, ground_abc):
        e = everything_constraint(ground_abc)
        assert e.lattice_set() == set(ground_abc.all_masks())

    def test_reduction_correct_random(self, ground_abcd, rng):
        taut_count = 0
        for _ in range(150):
            terms = random_dnf(rng, ground_abcd, rng.randint(1, 6))
            want = is_tautology_bruteforce(terms, ground_abcd)
            got_lat = is_tautology_via_differential(terms, ground_abcd, "lattice")
            got_sat = is_tautology_via_differential(terms, ground_abcd, "sat")
            assert want == got_lat == got_sat
            taut_count += want
        # the random sweep must include both outcomes to be meaningful
        assert 0 < taut_count < 150

    def test_known_tautology(self, ground_abc):
        a = ground_abc.parse("A")
        b = ground_abc.parse("B")
        # (A and B) or (not A) or (not B)
        terms = [(a | b, 0), (0, a), (0, b)]
        assert is_tautology_via_differential(terms, ground_abc)

    def test_known_non_tautology(self, ground_abc):
        a = ground_abc.parse("A")
        terms = [(a, 0)]
        assert not is_tautology_via_differential(terms, ground_abc)

    def test_contradictory_term_contributes_nothing(self, ground_abc):
        """A term with P and Q overlapping is unsatisfiable; it maps to a
        trivial differential constraint."""
        a = ground_abc.parse("A")
        terms = [(a, a)]
        cset = dnf_to_constraint_set(terms, ground_abc)
        (c,) = cset.constraints
        assert c.is_trivial
        assert not is_tautology_via_differential(terms, ground_abc)
