"""Unit tests for the DPLL solver."""

import pytest

from repro.logic import check_model, enumerate_models, is_satisfiable, solve


class TestBasics:
    def test_empty_clause_set_sat(self):
        assert solve([]) == {}

    def test_single_unit(self):
        model = solve([[1]])
        assert model[1] is True

    def test_contradiction(self):
        assert solve([[1], [-1]]) is None

    def test_empty_clause_unsat(self):
        assert solve([[1], []]) is None

    def test_tautological_clause_dropped(self):
        model = solve([[1, -1], [2]])
        assert model is not None and model[2] is True

    def test_duplicate_literals(self):
        assert solve([[1, 1, 1]]) is not None

    def test_chain_propagation(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        model = solve(clauses)
        assert all(model[v] for v in (1, 2, 3, 4))

    def test_unsat_pigeonhole_2_into_1(self):
        # two pigeons, one hole: p1 and p2 both in hole, but not together
        clauses = [[1], [2], [-1, -2]]
        assert solve(clauses) is None


class TestAgainstBruteForce:
    def test_random_3cnf(self, rng):
        for _ in range(250):
            n = rng.randint(1, 9)
            clauses = []
            for _ in range(rng.randint(1, 18)):
                width = rng.randint(1, 3)
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, n) for _ in range(width)
                ]
                clauses.append(clause)
            got = solve(clauses)
            want_models = enumerate_models(clauses, list(range(1, n + 1)))
            if got is None:
                assert not want_models, (clauses, want_models[:1])
            else:
                assert want_models
                # the returned (possibly partial) assignment must extend
                # to a model: check against clauses directly with
                # unassigned variables tried both ways
                free = [v for v in range(1, n + 1) if v not in got]
                extended_ok = False
                for bits in range(1 << len(free)):
                    model = dict(got)
                    for i, v in enumerate(free):
                        model[v] = bool(bits >> i & 1)
                    if check_model(clauses, model):
                        extended_ok = True
                        break
                assert extended_ok, (clauses, got)

    def test_is_satisfiable_consistency(self, rng):
        for _ in range(80):
            n = rng.randint(1, 6)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(2)]
                for _ in range(rng.randint(1, 10))
            ]
            assert is_satisfiable(clauses) == (solve(clauses) is not None)


class TestCheckModel:
    def test_positive(self):
        assert check_model([[1, -2]], {1: True, 2: True})

    def test_negative(self):
        assert not check_model([[1], [2]], {1: True, 2: False})

    def test_unassigned_variable_fails_clause(self):
        assert not check_model([[3]], {1: True})


class TestHardInstances:
    def test_php_3_into_2(self):
        """Pigeonhole 3 pigeons / 2 holes (unsat): var p*2+h+1."""
        clauses = []
        for p in range(3):
            clauses.append([p * 2 + 1, p * 2 + 2])  # each pigeon somewhere
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append([-(p1 * 2 + h + 1), -(p2 * 2 + h + 1)])
        assert solve(clauses) is None

    def test_satisfiable_structured(self):
        # a small 2-coloring of a path graph: v_i != v_{i+1}
        n = 8
        clauses = []
        for i in range(1, n):
            clauses.append([i, i + 1])
            clauses.append([-i, -(i + 1)])
        model = solve(clauses)
        assert model is not None
        for i in range(1, n):
            assert model[i] != model[i + 1]
