"""Unit tests for CNF/DNF conversion."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    VariableMap,
    solve,
    to_cnf_clauses,
    to_cnf_clauses_distributive,
    to_dnf_terms,
)


def _random_formula(rng, names, depth):
    if depth == 0:
        return Var(rng.choice(names))
    kind = rng.randrange(3)
    if kind == 0:
        return Not(_random_formula(rng, names, depth - 1))
    parts = tuple(
        _random_formula(rng, names, depth - 1) for _ in range(rng.randint(2, 3))
    )
    return And(parts) if kind == 1 else Or(parts)


def _evaluate(formula, names, bits):
    env = {n: bool(bits >> i & 1) for i, n in enumerate(names)}
    return formula.evaluate(env)


class TestVariableMap:
    def test_stable_indices(self):
        vm = VariableMap()
        assert vm.index_of("A") == 1
        assert vm.index_of("B") == 2
        assert vm.index_of("A") == 1
        assert vm.name_of(2) == "B"

    def test_fresh_variables_unnamed(self):
        vm = VariableMap()
        vm.index_of("A")
        aux = vm.fresh()
        assert aux == 2
        assert vm.name_of(aux) is None
        assert vm.count == 2


class TestTseitin:
    def test_equisatisfiable_random(self, rng):
        names = ["A", "B", "C"]
        for _ in range(80):
            f = _random_formula(rng, names, 3)
            vm = VariableMap()
            for n in names:
                vm.index_of(n)
            clauses = to_cnf_clauses(f, vm)
            sat_direct = any(
                _evaluate(f, names, bits) for bits in range(1 << len(names))
            )
            assert (solve(clauses) is not None) == sat_direct

    def test_models_project_correctly(self, rng):
        names = ["A", "B"]
        f = Or((And((Var("A"), Not(Var("B")))), And((Not(Var("A")), Var("B")))))
        vm = VariableMap()
        for n in names:
            vm.index_of(n)
        clauses = to_cnf_clauses(f, vm)
        model = solve(clauses)
        assert model is not None
        env = {n: model.get(vm.index_of(n), False) for n in names}
        assert f.evaluate(env)

    def test_constants(self):
        vm = VariableMap()
        assert solve(to_cnf_clauses(TRUE, vm)) is not None
        vm2 = VariableMap()
        assert solve(to_cnf_clauses(FALSE, vm2)) is None


class TestDnfTerms:
    def test_simple(self):
        f = Or((And((Var("A"), Not(Var("B")))), Var("C")))
        terms = to_dnf_terms(f)
        assert (frozenset({"A"}), frozenset({"B"})) in terms
        assert (frozenset({"C"}), frozenset()) in terms

    def test_contradictory_terms_dropped(self):
        f = And((Var("A"), Not(Var("A"))))
        assert to_dnf_terms(f) == []

    def test_equivalence_random(self, rng):
        names = ["A", "B", "C"]
        for _ in range(60):
            f = _random_formula(rng, names, 3)
            terms = to_dnf_terms(f)
            for bits in range(1 << len(names)):
                env = {n: bool(bits >> i & 1) for i, n in enumerate(names)}
                dnf_value = any(
                    all(env[v] for v in pos) and not any(env[v] for v in neg)
                    for pos, neg in terms
                )
                assert dnf_value == f.evaluate(env)


class TestDistributiveCnf:
    def test_exact_equivalence_random(self, rng):
        names = ["A", "B", "C"]
        for _ in range(60):
            f = _random_formula(rng, names, 2)
            vm = VariableMap()
            for n in names:
                vm.index_of(n)
            clauses = to_cnf_clauses_distributive(f, vm)
            for bits in range(1 << len(names)):
                env = {n: bool(bits >> i & 1) for i, n in enumerate(names)}
                model = {vm.index_of(n): env[n] for n in names}
                cnf_value = all(
                    any(model[abs(l)] == (l > 0) for l in clause)
                    for clause in clauses
                )
                assert cnf_value == f.evaluate(env)
