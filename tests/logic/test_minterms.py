"""Unit tests for minterms and minsets (Definition 5.1)."""

import pytest

from repro.core import GroundSet
from repro.logic import (
    Not,
    Var,
    assignment_of_mask,
    equivalent,
    implies_by_minsets,
    minset,
    minterm,
    negminset,
)


class TestMinterm:
    def test_minterm_true_exactly_at_mask(self, ground_abc):
        for mask in ground_abc.all_masks():
            m = minterm(ground_abc, mask)
            for other in ground_abc.all_masks():
                env = assignment_of_mask(ground_abc, other)
                assert m.evaluate(env) == (other == mask)

    def test_assignment_of_mask(self, ground_abc):
        env = assignment_of_mask(ground_abc, ground_abc.parse("AC"))
        assert env == {"A": True, "B": False, "C": True}


class TestMinset:
    def test_minset_of_var(self, ground_abc):
        got = minset(Var("A"), ground_abc)
        want = {m for m in ground_abc.all_masks() if m & 1}
        assert got == want

    def test_minset_disjunction_decomposes(self, ground_abc):
        """phi is equivalent to the disjunction of its minset's minterms."""
        f = Var("A") >> Var("B")
        ms = minset(f, ground_abc)
        for mask in ground_abc.all_masks():
            env = assignment_of_mask(ground_abc, mask)
            assert f.evaluate(env) == (mask in ms)

    def test_negminset_is_complement(self, ground_abc):
        f = (Var("A") & Var("B")) | Var("C")
        pos = minset(f, ground_abc)
        neg = negminset(f, ground_abc)
        assert pos | neg == set(ground_abc.all_masks())
        assert pos & neg == set()

    def test_foreign_variables_rejected(self, ground_abc):
        with pytest.raises(ValueError):
            minset(Var("Z"), ground_abc)


class TestEquivalence:
    def test_de_morgan_equivalence(self, ground_abc):
        a, b = Var("A"), Var("B")
        assert equivalent(~(a & b), ~a | ~b, ground_abc)
        assert not equivalent(a & b, a | b, ground_abc)


class TestMinsetImplication:
    """The 'well-known' fact before Prop 5.4: Phi |= phi iff
    negminset(phi) is covered by the premises' negminsets."""

    def test_modus_ponens_style(self, ground_abc):
        a, b, c = Var("A"), Var("B"), Var("C")
        assert implies_by_minsets([a >> b, b >> c], a >> c, ground_abc)
        assert not implies_by_minsets([a >> b], b >> a, ground_abc)

    def test_matches_truth_table_implication(self, ground_abc, rng):
        names = ["A", "B", "C"]

        def rand_formula(depth):
            if depth == 0:
                return Var(rng.choice(names))
            k = rng.randrange(3)
            if k == 0:
                return Not(rand_formula(depth - 1))
            left, right = rand_formula(depth - 1), rand_formula(depth - 1)
            return (left & right) if k == 1 else (left | right)

        for _ in range(60):
            premises = [rand_formula(2) for _ in range(rng.randint(1, 3))]
            conclusion = rand_formula(2)
            # truth-table implication
            want = True
            for mask in ground_abc.all_masks():
                env = assignment_of_mask(ground_abc, mask)
                if all(p.evaluate(env) for p in premises) and not conclusion.evaluate(env):
                    want = False
                    break
            got = implies_by_minsets(premises, conclusion, ground_abc)
            assert got == want
