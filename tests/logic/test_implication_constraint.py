"""Unit tests for implication constraints (Definition 5.2, Props 5.3-5.4)."""

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet
from repro.core.implication import implies_lattice
from repro.logic import implies_prop, negminset_of_constraint, to_formula
from repro.logic.minterms import assignment_of_mask
from repro.instances import random_constraint, random_constraint_set


class TestFormulaShape:
    def test_section5_example(self, ground_abcd):
        """alpha = A => B or (C and D): negminset = {A, AC, AD}."""
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        got = negminset_of_constraint(c)
        want = {ground_abcd.parse(x) for x in ("A", "AC", "AD")}
        assert got == want

    def test_formula_semantics(self, ground_abcd, rng):
        """The formula holds at U iff U is NOT in L(X, Y)."""
        for _ in range(40):
            c = random_constraint(
                rng, ground_abcd, max_members=3, allow_empty_member=True
            )
            formula = to_formula(c)
            for mask in ground_abcd.all_masks():
                env = assignment_of_mask(ground_abcd, mask)
                assert formula.evaluate(env) == (not c.lattice_contains(mask))

    def test_empty_family_is_negated_antecedent(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> ")
        formula = to_formula(c)
        assert not formula.evaluate({"A": True, "B": False, "C": False})
        assert formula.evaluate({"A": False, "B": True, "C": True})

    def test_empty_member_makes_formula_valid(self, ground_abc):
        from repro.core import SetFamily

        c = DifferentialConstraint(
            ground_abc, ground_abc.parse("A"), SetFamily(ground_abc, [0])
        )
        formula = to_formula(c)
        for mask in ground_abc.all_masks():
            assert formula.evaluate(assignment_of_mask(ground_abc, mask))


class TestProposition53:
    def test_negminset_equals_lattice(self, ground_abcd, rng):
        for _ in range(80):
            c = random_constraint(
                rng, ground_abcd, max_members=3, allow_empty_member=True
            )
            assert negminset_of_constraint(c) == set(c.iter_lattice())


class TestProposition54:
    def test_three_routes_agree(self, ground_abcd, rng):
        for _ in range(80):
            cs = random_constraint_set(
                rng, ground_abcd, rng.randint(1, 3), max_members=2,
                allow_empty_member=True,
            )
            t = random_constraint(
                rng, ground_abcd, max_members=2, allow_empty_member=True
            )
            lat = implies_lattice(cs, t)
            via_minset = implies_prop(cs, t, "minset")
            via_sat = implies_prop(cs, t, "sat")
            assert lat == via_minset == via_sat

    def test_example_34_through_logic(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        assert implies_prop(cs, t, "minset")
        assert implies_prop(cs, t, "sat")
        t2 = DifferentialConstraint.parse(ground_abc, "C -> B")
        assert not implies_prop(cs, t2, "minset")

    def test_unknown_method(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "A -> B")
        with pytest.raises(ValueError):
            implies_prop(cs, t, "nope")
