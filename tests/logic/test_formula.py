"""Unit tests for the propositional formula AST."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Const,
    Implies,
    Not,
    Or,
    Var,
    conj,
    disj,
)


class TestEvaluation:
    def test_var(self):
        assert Var("A").evaluate({"A": True})
        assert not Var("A").evaluate({"A": False})

    def test_connectives(self):
        a, b = Var("A"), Var("B")
        env = {"A": True, "B": False}
        assert not (a & b).evaluate(env)
        assert (a | b).evaluate(env)
        assert (~b).evaluate(env)
        assert not (a >> b).evaluate(env)
        assert (b >> a).evaluate(env)

    def test_constants(self):
        assert TRUE.evaluate({})
        assert not FALSE.evaluate({})

    def test_empty_nary_conventions(self):
        assert And(()).evaluate({})  # empty conjunction is true
        assert not Or(()).evaluate({})  # empty disjunction is false

    def test_conj_disj_helpers(self):
        assert conj([]) == TRUE
        assert disj([]) == FALSE
        a = Var("A")
        assert conj([a]) == a
        assert disj([a]) == a
        assert isinstance(conj([a, Var("B")]), And)


class TestVariables:
    def test_collects_all(self):
        f = (Var("A") & Var("B")) >> ~Var("C")
        assert f.variables() == {"A", "B", "C"}

    def test_constants_have_none(self):
        assert TRUE.variables() == frozenset()


class TestNnf:
    def _equivalent(self, f, g, names):
        for bits in range(1 << len(names)):
            env = {n: bool(bits >> i & 1) for i, n in enumerate(names)}
            if f.evaluate(env) != g.evaluate(env):
                return False
        return True

    def test_de_morgan(self):
        a, b = Var("A"), Var("B")
        f = ~(a & b)
        nnf = f.to_nnf()
        assert isinstance(nnf, Or)
        assert self._equivalent(f, nnf, ["A", "B"])

    def test_implication_rewrites(self):
        a, b = Var("A"), Var("B")
        f = a >> b
        nnf = f.to_nnf()
        assert self._equivalent(f, nnf, ["A", "B"])

    def test_double_negation(self):
        a = Var("A")
        assert (~~a).to_nnf() == a

    def test_negated_constants(self):
        assert (~TRUE).to_nnf() == FALSE
        assert (~FALSE).to_nnf() == TRUE

    def test_random_formulas(self, rng):
        names = ["A", "B", "C"]

        def random_formula(depth):
            if depth == 0:
                return Var(rng.choice(names))
            kind = rng.randrange(4)
            if kind == 0:
                return Not(random_formula(depth - 1))
            if kind == 1:
                return And((random_formula(depth - 1), random_formula(depth - 1)))
            if kind == 2:
                return Or((random_formula(depth - 1), random_formula(depth - 1)))
            return Implies(random_formula(depth - 1), random_formula(depth - 1))

        for _ in range(60):
            f = random_formula(3)
            assert self._equivalent(f, f.to_nnf(), names)


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Var("A") == Var("A")
        assert Var("A") != Var("B")
        assert And((Var("A"), Var("B"))) == And((Var("A"), Var("B")))
        assert hash(Not(Var("A"))) == hash(Not(Var("A")))

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Var("A").name = "B"
        with pytest.raises(AttributeError):
            TRUE.value = False

    def test_repr(self):
        assert repr(Var("A") >> Var("B")) == "(A => B)"
        assert repr(TRUE) == "TRUE"
