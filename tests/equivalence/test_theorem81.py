"""Tests for the executable Theorem 8.1 (experiment E6's correctness core)."""

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet, SetFamily
from repro.equivalence import STATEMENT_NAMES, Theorem81Report, evaluate_theorem81
from repro.instances import (
    random_constraint,
    random_constraint_set,
    random_implied_pair,
)


class TestNineWayAgreement:
    def test_random_sweep_without_empty_families(self, ground_abcd, rng):
        """With nonempty families everywhere, all nine statements agree."""
        strict = 0
        for _ in range(40):
            cs = random_constraint_set(
                rng, ground_abcd, rng.randint(1, 3), max_members=2, min_members=1
            )
            t = random_constraint(
                rng, ground_abcd, max_members=2, allow_empty_member=True
            )
            report = evaluate_theorem81(cs, t)
            assert report.all_agree(), report.statements
            strict += 1
        assert strict == 40

    def test_example_34(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        report = evaluate_theorem81(cs, t)
        assert report.all_agree()
        assert report.value() is True

    def test_non_implication_agrees_too(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "B -> A")
        report = evaluate_theorem81(cs, t)
        assert report.all_agree()
        assert report.value() is False

    def test_planted_implied_pairs(self, ground_abcd, rng):
        for _ in range(15):
            cs, t = random_implied_pair(rng, ground_abcd, max_members=2)
            report = evaluate_theorem81(cs, t)
            assert report.consistent_with_paper()
            assert report.statements["lattice"] is True


class TestRelationalVacuityEdge:
    def test_documented_divergence(self, ground_abc):
        """C with an empty-family constraint: no nonempty relation (and no
        Simpson function) satisfies C, so the two relational statements
        hold vacuously while the others follow the real implication."""
        cs = ConstraintSet.of(ground_abc, "A -> ")
        t = DifferentialConstraint.parse(ground_abc, "B -> ")
        report = evaluate_theorem81(cs, t)
        assert report.relational_vacuous
        assert report.statements["semantic_simpson"] is True
        assert report.statements["boolean"] is True
        assert report.statements["lattice"] is False
        assert report.statements["semantic_F"] is False
        assert report.statements["semantic_support"] is False
        assert not report.all_agree()
        assert report.consistent_with_paper()

    def test_vacuity_flag_only_when_empty_family_present(self, ground_abc, rng):
        for _ in range(20):
            cs = random_constraint_set(
                rng, ground_abc, 2, max_members=2, min_members=1
            )
            t = random_constraint(rng, ground_abc, max_members=2)
            report = evaluate_theorem81(cs, t)
            assert not report.relational_vacuous

    def test_random_sweep_with_empty_families(self, ground_abc, rng):
        for _ in range(25):
            cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
            if rng.random() < 0.5:
                cs = cs.add(
                    DifferentialConstraint(
                        ground_abc, rng.randrange(8), SetFamily(ground_abc)
                    )
                )
            t = random_constraint(
                rng, ground_abc, max_members=2, allow_empty_member=True
            )
            report = evaluate_theorem81(cs, t)
            assert report.consistent_with_paper(), (cs, t, report.statements)


class TestReportApi:
    def test_statement_inventory(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "A -> B")
        report = evaluate_theorem81(cs, t)
        assert tuple(report.statements) == STATEMENT_NAMES
        assert len(STATEMENT_NAMES) == 9

    def test_disagreeing_empty_on_agreement(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "A -> B")
        report = evaluate_theorem81(cs, t)
        assert report.disagreeing() == {}

    def test_disagreeing_names_culprits(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> ")
        t = DifferentialConstraint.parse(ground_abc, "B -> ")
        report = evaluate_theorem81(cs, t)
        assert set(report.disagreeing()) == {"semantic_simpson", "boolean"}
