"""Unit tests for the (FDFree, Bd-) concise representation (Section 6.1.1)."""

import pytest

from repro.core import GroundSet
from repro.core import subsets as sb
from repro.fis import (
    BasketDatabase,
    apriori,
    correlated_baskets,
    is_disjunctive,
    mine_concise,
    random_baskets,
    verify_lossless,
)


class TestMining:
    def test_elements_are_frequent_disjunctive_free(self, ground_5, rng):
        for _ in range(8):
            db = random_baskets(ground_5, rng.randint(5, 40), 0.5, rng)
            kappa = rng.randint(1, 6)
            rep = mine_concise(db, kappa, max_rhs=2)
            for mask, support in rep.elements.items():
                assert support == db.support(mask)
                assert support >= kappa
                assert not is_disjunctive(db, mask, max_rhs=2)

    def test_border_minimal_non_fdfree(self, ground_5, rng):
        for _ in range(8):
            db = random_baskets(ground_5, rng.randint(5, 40), 0.5, rng)
            kappa = rng.randint(1, 6)
            rep = mine_concise(db, kappa, max_rhs=2)

            def fdfree(mask):
                return db.support(mask) >= kappa and not is_disjunctive(
                    db, mask, max_rhs=2
                )

            border = set(rep.border)
            want = {
                mask
                for mask in ground_5.all_masks()
                if not fdfree(mask)
                and all(
                    fdfree(mask & ~bit) for bit in sb.iter_singletons(mask)
                )
            }
            assert border == want

    def test_border_entries_carry_valid_rules(self, ground_5, rng):
        db = random_baskets(ground_5, 25, 0.5, rng)
        rep = mine_concise(db, 2, max_rhs=2)
        for mask, entry in rep.border.items():
            assert entry.support == db.support(mask)
            if entry.infrequent:
                assert entry.support < 2
            else:
                assert entry.rule is not None
                assert entry.rule.satisfied_by(db)
                assert entry.rule.support_set() == mask


class TestLosslessness:
    def test_random_sweep(self, ground_5, rng):
        for _ in range(10):
            db = random_baskets(ground_5, rng.randint(1, 40), rng.random(), rng)
            for kappa in (1, 3, 6):
                for max_rhs in (1, 2, None):
                    rep = mine_concise(db, kappa, max_rhs)
                    assert verify_lossless(db, rep)

    def test_correlated_sweep(self, ground_5, rng):
        for _ in range(5):
            db = correlated_baskets(ground_5, 40, 2, 3, 0.1, 0.05, rng)
            for kappa in (2, 5):
                rep = mine_concise(db, kappa, 2)
                assert verify_lossless(db, rep)

    def test_derive_memoizes(self, ground_5, rng):
        db = random_baskets(ground_5, 20, 0.5, rng)
        rep = mine_concise(db, 3, 2)
        x = ground_5.universe_mask
        assert rep.derive(x) == rep.derive(x)

    def test_empty_database(self, ground_abc):
        db = BasketDatabase(ground_abc, [])
        rep = mine_concise(db, 1, 2)
        assert rep.elements == {}
        assert 0 in rep.border
        assert verify_lossless(db, rep)

    def test_kappa_zero(self, ground_abc, rng):
        db = random_baskets(ground_abc, 10, 0.5, rng)
        rep = mine_concise(db, 0, 2)
        assert verify_lossless(db, rep)


class TestConcisenessShape:
    def test_correlated_data_shrinks_representation(self, rng):
        """The Bykowski-Rigotti phenomenon the paper cites: on strongly
        correlated data |FDFree| + |Bd-| is (much) smaller than the
        number of frequent itemsets."""
        s = GroundSet("ABCDEFGH")
        db = correlated_baskets(s, 150, 2, 5, 0.05, 0.02, rng)
        kappa = 8
        full = apriori(db, kappa)
        rep = mine_concise(db, kappa, 2)
        assert verify_lossless(db, rep)
        assert rep.size() < len(full.frequent)

    def test_representation_size_accounting(self, ground_5, rng):
        db = random_baskets(ground_5, 20, 0.5, rng)
        rep = mine_concise(db, 2, 2)
        assert rep.size() == len(rep.elements) + len(rep.border)
