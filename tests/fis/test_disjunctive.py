"""Unit tests for disjunctive constraints (Def 6.1, Props 6.3-6.4)."""

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily
from repro.fis import (
    BasketDatabase,
    DisjunctiveConstraint,
    implies_disjunctive,
    random_baskets,
    semantic_implies_over_single_basket_lists,
)
from repro.instances import random_constraint, random_family, random_mask


class TestSatisfaction:
    def test_definition_61(self, ground_abcd):
        # every basket with A also has AB or ACD
        db = BasketDatabase.of(ground_abcd, "AB", "ACD", "BC", "ABD")
        c = DisjunctiveConstraint.of(ground_abcd, "A", "B", "CD")
        assert c.satisfied_by(db)
        db_bad = db.extended(["AD"])  # has A, lacks both B and CD
        assert not c.satisfied_by(db_bad)

    def test_pure_association_rule(self, ground_abcd):
        """B({a}) = B({a, b}): the [25] augmentation example."""
        db = BasketDatabase.of(ground_abcd, "AB", "ABC", "BD")
        rule = DisjunctiveConstraint.of(ground_abcd, "A", "B")
        assert rule.satisfied_by(db)
        # augmentation: AC =>disj B also holds
        lifted = DisjunctiveConstraint.of(ground_abcd, "AC", "B")
        assert lifted.satisfied_by(db)

    def test_trivial_always_satisfied(self, ground_abcd, rng):
        c = DisjunctiveConstraint.of(ground_abcd, "AB", "B")
        assert c.is_trivial
        for _ in range(10):
            db = random_baskets(ground_abcd, rng.randint(0, 10), 0.5, rng)
            assert c.satisfied_by(db)

    def test_empty_family_means_absent(self, ground_abcd):
        c = DisjunctiveConstraint(
            ground_abcd, ground_abcd.parse("AB"), SetFamily(ground_abcd)
        )
        assert c.satisfied_by(BasketDatabase.of(ground_abcd, "A", "B", "CD"))
        assert not c.satisfied_by(BasketDatabase.of(ground_abcd, "ABC"))

    def test_empty_database_satisfies_everything(self, ground_abcd, rng):
        db = BasketDatabase(ground_abcd, [])
        for _ in range(20):
            c = DisjunctiveConstraint.from_differential(
                random_constraint(rng, ground_abcd, allow_empty_member=True)
            )
            assert c.satisfied_by(db)


class TestProposition63:
    def test_satisfaction_transfer(self, ground_abcd, rng):
        for _ in range(30):
            db = random_baskets(ground_abcd, rng.randint(1, 25), 0.45, rng)
            sparse = db.support_function()
            dense = db.dense_support_function()
            for _ in range(10):
                c = random_constraint(
                    rng, ground_abcd, max_members=2, allow_empty_member=True
                )
                disj = DisjunctiveConstraint.from_differential(c)
                assert (
                    disj.satisfied_by(db)
                    == c.satisfied_by(sparse)
                    == c.satisfied_by(dense)
                )


class TestProposition64:
    def test_implication_routes_agree(self, ground_abcd, rng):
        for _ in range(60):
            rules = [
                DisjunctiveConstraint.from_differential(
                    random_constraint(rng, ground_abcd, max_members=2)
                )
                for _ in range(rng.randint(1, 3))
            ]
            t = DisjunctiveConstraint.from_differential(
                random_constraint(rng, ground_abcd, max_members=2)
            )
            a = implies_disjunctive(rules, t, "lattice")
            b = implies_disjunctive(rules, t, "sat")
            c = semantic_implies_over_single_basket_lists(rules, t)
            assert a == b == c

    def test_example_34_in_disjunctive_world(self, ground_abc):
        rules = [
            DisjunctiveConstraint.of(ground_abc, "A", "B"),
            DisjunctiveConstraint.of(ground_abc, "B", "C"),
        ]
        t = DisjunctiveConstraint.of(ground_abc, "A", "C")
        assert implies_disjunctive(rules, t)
        assert semantic_implies_over_single_basket_lists(rules, t)


class TestSupportSet:
    def test_support_set(self, ground_abcd):
        c = DisjunctiveConstraint.of(ground_abcd, "A", "B", "CD")
        assert c.support_set() == ground_abcd.parse("ABCD")

    def test_round_trip_conversion(self, ground_abcd, rng):
        for _ in range(20):
            c = random_constraint(rng, ground_abcd, max_members=2)
            disj = DisjunctiveConstraint.from_differential(c)
            assert disj.to_differential() == c

    def test_repr(self, ground_abcd):
        c = DisjunctiveConstraint.of(ground_abcd, "A", "B", "CD")
        assert repr(c) == "A =>disj {B, CD}"
