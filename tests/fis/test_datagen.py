"""Unit tests for the synthetic basket generators."""

import random

import pytest

from repro.core import GroundSet
from repro.core import subsets as sb
from repro.fis import (
    DisjunctiveConstraint,
    correlated_baskets,
    plant_disjunctive_rule,
    random_baskets,
)


class TestRandomBaskets:
    def test_shape_and_determinism(self, ground_5):
        a = random_baskets(ground_5, 30, 0.4, random.Random(9))
        b = random_baskets(ground_5, 30, 0.4, random.Random(9))
        assert a == b
        assert len(a) == 30

    def test_density_dial(self, ground_5):
        rng = random.Random(1)
        sparse = random_baskets(ground_5, 300, 0.1, rng)
        dense = random_baskets(ground_5, 300, 0.9, rng)
        sparse_items = sum(sb.popcount(b) for b in sparse)
        dense_items = sum(sb.popcount(b) for b in dense)
        assert dense_items > 3 * sparse_items

    def test_probability_bounds(self, ground_5):
        rng = random.Random(2)
        empty = random_baskets(ground_5, 20, 0.0, rng)
        assert all(b == 0 for b in empty)
        full = random_baskets(ground_5, 20, 1.0, rng)
        assert all(b == ground_5.universe_mask for b in full)


class TestCorrelatedBaskets:
    def test_low_noise_concentrates_on_templates(self, ground_5):
        rng = random.Random(3)
        db = correlated_baskets(ground_5, 200, 2, 3, 0.0, 0.0, rng)
        distinct = set(db.baskets)
        assert len(distinct) <= 2

    def test_deterministic(self, ground_5):
        a = correlated_baskets(ground_5, 50, 3, 3, 0.1, 0.05, random.Random(4))
        b = correlated_baskets(ground_5, 50, 3, 3, 0.1, 0.05, random.Random(4))
        assert a == b

    def test_template_size_capped_by_ground(self):
        s = GroundSet("AB")
        rng = random.Random(5)
        db = correlated_baskets(s, 10, 1, 10, 0.0, 0.0, rng)
        assert all(sb.popcount(b) <= 2 for b in db)


class TestPlanting:
    def test_planted_rule_holds(self, ground_5):
        rng = random.Random(6)
        db = random_baskets(ground_5, 60, 0.5, rng)
        rule = DisjunctiveConstraint.of(ground_5, "A", "B", "CD")
        planted = plant_disjunctive_rule(db, rule, rng)
        assert rule.satisfied_by(planted)
        assert len(planted) == len(db)

    def test_planting_preserves_satisfying_baskets(self, ground_5):
        rng = random.Random(7)
        db = random_baskets(ground_5, 40, 0.4, rng)
        rule = DisjunctiveConstraint.of(ground_5, "A", "B")
        planted = plant_disjunctive_rule(db, rule, rng)
        for before, after in zip(db, planted):
            # only baskets violating the rule changed, and only by growth
            if sb.is_subset(rule.lhs, before) and sb.is_subset(
                ground_5.parse("AB"), before
            ):
                assert after == before
            assert sb.is_subset(before & ~rule.family.union_support(), after)

    def test_empty_family_rule_planting(self, ground_5):
        rng = random.Random(8)
        db = random_baskets(ground_5, 30, 0.6, rng)
        from repro.core import SetFamily

        rule = DisjunctiveConstraint(
            ground_5, ground_5.parse("AB"), SetFamily(ground_5)
        )
        planted = plant_disjunctive_rule(db, rule, rng)
        assert rule.satisfied_by(planted)

    def test_fully_empty_rule(self, ground_5):
        rng = random.Random(9)
        from repro.core import SetFamily

        db = random_baskets(ground_5, 10, 0.5, rng)
        rule = DisjunctiveConstraint(ground_5, 0, SetFamily(ground_5))
        planted = plant_disjunctive_rule(db, rule, rng)
        assert len(planted) == 0
