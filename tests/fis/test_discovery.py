"""Tests for differential-theory discovery."""

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet
from repro.core import subsets as sb
from repro.core.implication import implies_lattice
from repro.fis import BasketDatabase, random_baskets
from repro.fis.discovery import (
    discover_cover,
    minimal_disjunctive_rules,
    theory_of,
    zero_set,
)
from repro.instances import random_constraint, random_nonneg_density_function


class TestZeroSetAndTheory:
    def test_zero_set_definition(self, ground_abc, rng):
        f = random_nonneg_density_function(rng, ground_abc)
        z = zero_set(f)
        for mask in ground_abc.all_masks():
            assert (abs(f.density_value(mask)) <= 1e-9) == (mask in z)

    def test_theory_axiomatizes_satisfaction(self, ground_abcd, rng):
        """f |= c iff theory_of(f) |= c -- the defining property."""
        for _ in range(12):
            f = random_nonneg_density_function(rng, ground_abcd)
            theory = theory_of(f)
            for _ in range(12):
                c = random_constraint(
                    rng, ground_abcd, max_members=2, allow_empty_member=True
                )
                assert c.satisfied_by(f) == implies_lattice(theory, c)

    def test_theory_of_sparse_function(self, ground_abcd, rng):
        db = random_baskets(ground_abcd, 12, 0.5, rng)
        sparse = db.support_function()
        dense = db.dense_support_function()
        assert theory_of(sparse) == theory_of(dense)

    def test_zero_function_has_full_theory(self, ground_abc, rng):
        from repro.core import SetFunction

        f = SetFunction.zeros(ground_abc, exact=True)
        theory = theory_of(f)
        for _ in range(20):
            c = random_constraint(
                rng, ground_abc, max_members=2, allow_empty_member=True
            )
            assert implies_lattice(theory, c)


class TestDiscoverCover:
    def test_cover_equivalent_to_theory(self, ground_abc, rng):
        for _ in range(8):
            f = random_nonneg_density_function(rng, ground_abc)
            cover = discover_cover(f)
            theory = theory_of(f)
            assert cover.equivalent_to(theory)
            assert len(cover) <= len(theory)

    def test_cover_from_database(self, ground_abc, rng):
        db = random_baskets(ground_abc, 8, 0.5, rng)
        cover = discover_cover(db)
        f = db.support_function()
        for c in cover:
            assert c.satisfied_by(f)

    def test_cover_irredundant(self, ground_abc, rng):
        f = random_nonneg_density_function(rng, ground_abc)
        cover = discover_cover(f)
        for c in cover:
            assert not cover.is_redundant(c)


class TestMinimalRules:
    def test_rules_are_satisfied_and_nontrivial(self, ground_abcd, rng):
        for _ in range(10):
            db = random_baskets(ground_abcd, rng.randint(1, 15), 0.5, rng)
            for rule in minimal_disjunctive_rules(db, max_rhs=2):
                assert rule.satisfied_by(db)
                assert not rule.is_trivial
                assert rule.lhs & rule.family.union_support() == 0

    def test_rules_are_minimal(self, ground_abcd, rng):
        """No componentwise-smaller pair is a satisfied rule."""
        from repro.fis.disjunctive_free import holds_singleton_rule

        for _ in range(8):
            db = random_baskets(ground_abcd, rng.randint(1, 12), 0.5, rng)
            rules = minimal_disjunctive_rules(db, max_rhs=2)
            for rule in rules:
                rhs = rule.family.union_support()
                for sub_lhs in sb.iter_subsets(rule.lhs):
                    for sub_rhs in sb.iter_subsets(rhs):
                        if sub_rhs == 0:
                            continue
                        if (sub_lhs, sub_rhs) == (rule.lhs, rhs):
                            continue
                        assert not holds_singleton_rule(db, sub_lhs, sub_rhs)

    def test_rules_generate_all_satisfied(self, ground_abc, rng):
        """Every satisfied singleton rule is dominated by a minimal one."""
        from repro.fis.disjunctive_free import holds_singleton_rule

        for _ in range(10):
            db = random_baskets(ground_abc, rng.randint(1, 10), 0.5, rng)
            rules = minimal_disjunctive_rules(db)
            pairs = [(r.lhs, r.family.union_support()) for r in rules]
            universe = ground_abc.universe_mask
            for rhs in range(1, universe + 1):
                for lhs in sb.iter_subsets(universe & ~rhs):
                    if holds_singleton_rule(db, lhs, rhs):
                        assert any(
                            sb.is_subset(pl, lhs) and sb.is_subset(pr, rhs)
                            for pl, pr in pairs
                        ), (ground_abc.format_mask(lhs), ground_abc.format_mask(rhs))

    def test_perfect_correlation_found(self, ground_abcd):
        """A and B always co-occur: the rules A => B and B => A emerge."""
        db = BasketDatabase.of(ground_abcd, "AB", "ABC", "ABD", "C", "D")
        rules = minimal_disjunctive_rules(db, max_rhs=1)
        reprs = {repr(r) for r in rules}
        assert "A =>disj {B}" in reprs
        assert "B =>disj {A}" in reprs
