"""Unit tests for Apriori and the negative border (Section 6.1.1)."""

import pytest

from repro.core import GroundSet
from repro.core import subsets as sb
from repro.fis import (
    BasketDatabase,
    apriori,
    bruteforce_frequent,
    correlated_baskets,
    negative_border_of,
    random_baskets,
)


class TestCorrectness:
    def test_matches_bruteforce_random(self, ground_5, rng):
        for _ in range(12):
            db = random_baskets(ground_5, rng.randint(1, 40), rng.random(), rng)
            for kappa in (1, 2, 5, 10):
                res = apriori(db, kappa)
                assert res.frequent == bruteforce_frequent(db, kappa)

    def test_matches_bruteforce_correlated(self, ground_5, rng):
        db = correlated_baskets(ground_5, 50, 3, 3, 0.15, 0.05, rng)
        for kappa in (2, 5, 12):
            res = apriori(db, kappa)
            assert res.frequent == bruteforce_frequent(db, kappa)

    def test_border_is_minimal_infrequent(self, ground_5, rng):
        for _ in range(12):
            db = random_baskets(ground_5, rng.randint(1, 40), rng.random(), rng)
            kappa = rng.randint(1, 8)
            res = apriori(db, kappa)
            assert set(res.negative_border) == negative_border_of(
                res.frequent, ground_5
            )

    def test_border_supports_correct(self, ground_5, rng):
        db = random_baskets(ground_5, 30, 0.5, rng)
        res = apriori(db, 5)
        for mask, support in res.negative_border.items():
            assert support == db.support(mask)
            assert support < 5


class TestBorderDeduction:
    def test_status_by_border(self, ground_5, rng):
        """The border is a concise representation of frequency status
        (the Mannila-Toivonen observation the paper cites)."""
        for _ in range(8):
            db = random_baskets(ground_5, rng.randint(5, 40), 0.5, rng)
            kappa = rng.randint(1, 6)
            res = apriori(db, kappa)
            for mask in ground_5.all_masks():
                assert res.status_by_border(mask) == (
                    db.support(mask) >= kappa
                )


class TestEdgeCases:
    def test_empty_database(self, ground_abc):
        db = BasketDatabase(ground_abc, [])
        res = apriori(db, 1)
        assert res.frequent == {}
        assert res.negative_border == {0: 0}

    def test_kappa_zero_everything_frequent(self, ground_abc, rng):
        db = random_baskets(ground_abc, 10, 0.5, rng)
        res = apriori(db, 0)
        assert len(res.frequent) == 8
        assert res.negative_border == {}

    def test_single_basket(self, ground_abc):
        db = BasketDatabase.of(ground_abc, "AB")
        res = apriori(db, 1)
        assert set(res.frequent) == {
            0,
            ground_abc.parse("A"),
            ground_abc.parse("B"),
            ground_abc.parse("AB"),
        }

    def test_counts_accounting(self, ground_5, rng):
        """Apriori never counts more candidates than brute force."""
        db = random_baskets(ground_5, 25, 0.4, rng)
        res = apriori(db, 4)
        assert res.support_counts <= 1 << ground_5.size
        assert res.support_counts >= len(res.frequent) + len(res.negative_border)

    def test_max_level(self, ground_abc):
        db = BasketDatabase.of(ground_abc, "ABC", "ABC")
        res = apriori(db, 2)
        assert res.max_level() == 3
