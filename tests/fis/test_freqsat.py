"""Tests for frequency-constraint satisfiability (the C-P bridge)."""

import random

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet
from repro.fis import BasketDatabase, is_support_function, random_baskets
from repro.fis.freqsat import (
    FrequencyConstraint,
    GeneralizedDensityConstraint,
    measure_sat,
    support_sat,
)


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABC")


class TestFrequencyConstraint:
    def test_satisfaction(self, s, rng):
        db = random_baskets(s, 10, 0.5, rng)
        f = db.dense_support_function()
        for x in s.all_masks():
            v = db.support(x)
            assert FrequencyConstraint(x, v, v).satisfied_by(f)
            assert FrequencyConstraint(x, 0, None).satisfied_by(f)
            assert not FrequencyConstraint(x, v + 1, None).satisfied_by(f)
            if v:
                assert not FrequencyConstraint(x, 0, v - 1).satisfied_by(f)

    def test_of_shorthand(self, s):
        fc = FrequencyConstraint.of(s, "AB", 2, 5)
        assert fc.x_mask == s.parse("AB")


class TestMeasureSat:
    def test_simple_feasible(self, s):
        witness = measure_sat(
            s,
            [
                FrequencyConstraint.of(s, "", 10, 10),
                FrequencyConstraint.of(s, "A", 4, 6),
                FrequencyConstraint.of(s, "AB", 2, 3),
            ],
        )
        assert witness is not None
        assert witness.is_nonnegative_density(1e-9)
        assert 10 - 1e-6 <= witness("") <= 10 + 1e-6
        assert 4 - 1e-6 <= witness("A") <= 6 + 1e-6

    def test_antimonotonicity_infeasible(self, s):
        """s(AB) > s(A) is impossible for any frequency function."""
        witness = measure_sat(
            s,
            [
                FrequencyConstraint.of(s, "A", 0, 3),
                FrequencyConstraint.of(s, "AB", 5, None),
            ],
        )
        assert witness is None

    def test_inclusion_exclusion_infeasible(self, s):
        """s(A)+s(B) - s(AB) <= s((/)) must hold; violate it."""
        witness = measure_sat(
            s,
            [
                FrequencyConstraint.of(s, "", 10, 10),
                FrequencyConstraint.of(s, "A", 8, None),
                FrequencyConstraint.of(s, "B", 8, None),
                FrequencyConstraint.of(s, "AB", 0, 2),
            ],
        )
        assert witness is None

    def test_with_differential_constraints(self, s):
        """A -> {B} forces every A-basket to contain B: s(A) = s(AB)."""
        c = DifferentialConstraint.parse(s, "A -> B")
        witness = measure_sat(
            s,
            [
                FrequencyConstraint.of(s, "A", 5, 5),
                FrequencyConstraint.of(s, "AB", 5, 5),
            ],
            [c],
        )
        assert witness is not None
        assert c.satisfied_by(witness, tol=1e-7)

        conflicting = measure_sat(
            s,
            [
                FrequencyConstraint.of(s, "A", 5, 5),
                FrequencyConstraint.of(s, "AB", 0, 3),
            ],
            [c],
        )
        assert conflicting is None

    def test_generalized_density_bounds(self, s):
        """The conclusion's generalization: pin a density to a range."""
        g = GeneralizedDensityConstraint.of(s, "A", ["B"], lower=2, upper=4)
        witness = measure_sat(s, [], [g])
        assert witness is not None
        assert g.satisfied_by(witness, tol=1e-7)
        for u in g.region(s):
            assert witness.density_value(u) >= 2 - 1e-7

    def test_generalized_subsumes_differential(self, s, rng):
        from repro.instances import random_constraint

        for _ in range(20):
            c = random_constraint(rng, s, max_members=2)
            g = GeneralizedDensityConstraint.from_differential(c)
            f = random_baskets(s, 8, 0.5, rng).dense_support_function()
            assert g.satisfied_by(f) == c.satisfied_by(f)

    def test_contradictory_density_bounds(self, s):
        g1 = GeneralizedDensityConstraint.of(s, "A", ["B"], lower=3, upper=None)
        g2 = GeneralizedDensityConstraint.of(s, "A", ["B"], lower=0, upper=1)
        assert measure_sat(s, [], [g1, g2]) is None


class TestSupportSat:
    def test_integral_witness_is_database(self, s):
        db = support_sat(
            s,
            [
                FrequencyConstraint.of(s, "", 7, 7),
                FrequencyConstraint.of(s, "A", 3, 3),
                FrequencyConstraint.of(s, "AB", 1, 2),
            ],
        )
        assert isinstance(db, BasketDatabase)
        assert len(db) == 7
        assert db.support(s.parse("A")) == 3
        assert 1 <= db.support(s.parse("AB")) <= 2

    def test_integral_gap(self, s):
        """Rationally feasible but integrally infeasible bounds."""
        constraints = [
            FrequencyConstraint.of(s, "", 1, 1),
            FrequencyConstraint.of(s, "A", 0.4, 0.6),
        ]
        assert measure_sat(s, constraints) is not None
        assert support_sat(s, constraints) is None

    def test_round_trip_with_real_database(self, s, rng):
        """Pinning every support to a real database's values must be
        satisfiable -- and any witness has the same support function."""
        db = random_baskets(s, 9, 0.5, rng)
        constraints = [
            FrequencyConstraint(x, db.support(x), db.support(x))
            for x in s.all_masks()
        ]
        witness = support_sat(s, constraints)
        assert witness is not None
        for x in s.all_masks():
            assert witness.support(x) == db.support(x)

    def test_differential_constraints_in_integral_mode(self, s):
        c = DifferentialConstraint.parse(s, "A -> B, C")
        db = support_sat(
            s,
            [
                FrequencyConstraint.of(s, "A", 4, 4),
                FrequencyConstraint.of(s, "", 6, 6),
            ],
            [c],
        )
        assert db is not None
        from repro.fis import DisjunctiveConstraint

        assert DisjunctiveConstraint.from_differential(c).satisfied_by(db)
