"""Unit tests for inference over disjunctive sets (Section 6, end)."""

import pytest

from repro.core import GroundSet
from repro.fis import (
    DisjunctiveConstraint,
    derivable_beyond_support_sets,
    is_derivably_disjunctive,
    prune_redundant_rules,
    support_set_upclosure,
)


@pytest.fixture
def paper_rules(ground_abcd):
    """The paper's closing example: A -> {B, D} and B -> {C, D}."""
    return [
        DisjunctiveConstraint.of(ground_abcd, "A", "B", "D"),
        DisjunctiveConstraint.of(ground_abcd, "B", "C", "D"),
    ]


class TestPaperExample:
    def test_acd_derivable_by_transitivity(self, ground_abcd, paper_rules):
        acd = ground_abcd.parse("ACD")
        assert is_derivably_disjunctive(paper_rules, acd, ground_abcd)

    def test_acd_not_direct(self, ground_abcd, paper_rules):
        acd = ground_abcd.parse("ACD")
        assert acd not in support_set_upclosure(paper_rules, ground_abcd)

    def test_acd_in_beyond_set(self, ground_abcd, paper_rules):
        extra = derivable_beyond_support_sets(paper_rules, ground_abcd)
        assert ground_abcd.parse("ACD") in extra

    def test_direct_support_sets(self, ground_abcd, paper_rules):
        direct = support_set_upclosure(paper_rules, ground_abcd)
        assert ground_abcd.parse("ABD") in direct
        assert ground_abcd.parse("BCD") in direct
        assert ground_abcd.parse("ABCD") in direct
        assert ground_abcd.parse("AB") not in direct


class TestDerivability:
    def test_support_sets_always_derivable(self, ground_abcd, paper_rules):
        for rule in paper_rules:
            assert is_derivably_disjunctive(
                paper_rules, rule.support_set(), ground_abcd
            )

    def test_upward_closed(self, ground_abcd, paper_rules):
        import repro.core.subsets as sb

        for mask in ground_abcd.all_masks():
            if is_derivably_disjunctive(paper_rules, mask, ground_abcd):
                bigger = mask | ground_abcd.parse("D")
                assert is_derivably_disjunctive(paper_rules, bigger, ground_abcd)

    def test_nothing_derivable_from_no_rules(self, ground_abcd):
        for mask in ground_abcd.all_masks():
            assert not is_derivably_disjunctive([], mask, ground_abcd)

    def test_small_sets_not_derivable(self, ground_abcd, paper_rules):
        assert not is_derivably_disjunctive(paper_rules, 0, ground_abcd)
        assert not is_derivably_disjunctive(
            paper_rules, ground_abcd.parse("A"), ground_abcd
        )


class TestPruning:
    def test_implied_rule_pruned(self, ground_abcd, paper_rules):
        derived = DisjunctiveConstraint.of(ground_abcd, "A", "C", "D")
        rules = paper_rules + [derived]
        kept = prune_redundant_rules(rules, ground_abcd)
        assert derived not in kept
        assert len(kept) == 2

    def test_pruning_preserves_derivable_sets(self, ground_abcd, paper_rules):
        derived = DisjunctiveConstraint.of(ground_abcd, "A", "C", "D")
        rules = paper_rules + [derived]
        kept = prune_redundant_rules(rules, ground_abcd)
        before = derivable_beyond_support_sets(rules, ground_abcd)
        after_all = {
            m
            for m in ground_abcd.all_masks()
            if is_derivably_disjunctive(kept, m, ground_abcd)
        }
        before_all = {
            m
            for m in ground_abcd.all_masks()
            if is_derivably_disjunctive(rules, m, ground_abcd)
        }
        assert after_all == before_all

    def test_independent_rules_kept(self, ground_abcd):
        rules = [
            DisjunctiveConstraint.of(ground_abcd, "A", "B"),
            DisjunctiveConstraint.of(ground_abcd, "C", "D"),
        ]
        kept = prune_redundant_rules(rules, ground_abcd)
        assert len(kept) == 2

    def test_trivial_rules_pruned(self, ground_abcd):
        rules = [
            DisjunctiveConstraint.of(ground_abcd, "AB", "B"),  # trivial
            DisjunctiveConstraint.of(ground_abcd, "A", "B"),
        ]
        kept = prune_redundant_rules(rules, ground_abcd)
        assert len(kept) == 1
