"""Unit tests for basket databases (Section 6.1 substrate)."""

import pytest

from repro.core import GroundSet
from repro.fis import BasketDatabase, random_baskets


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABCDE")


@pytest.fixture
def db(s) -> BasketDatabase:
    return BasketDatabase.of(s, "AB", "ABC", "AB", "C", "")


class TestConstruction:
    def test_list_semantics_keeps_duplicates(self, db):
        assert len(db) == 5
        assert db.baskets.count(db.ground.parse("AB")) == 2

    def test_of_parses(self, s):
        db = BasketDatabase.of(s, "A", ["B", "C"])
        assert db.baskets == (s.parse("A"), s.parse("BC"))

    def test_mask_validation(self, s):
        with pytest.raises(Exception):
            BasketDatabase(s, [1 << 10])

    def test_equality(self, s):
        a = BasketDatabase.of(s, "A", "B")
        b = BasketDatabase.of(s, "A", "B")
        c = BasketDatabase.of(s, "B", "A")  # order matters: it is a list
        assert a == b
        assert a != c


class TestCoversAndSupports:
    def test_cover_definition(self, db, s):
        assert db.cover(s.parse("AB")) == {0, 1, 2}
        assert db.cover(s.parse("C")) == {1, 3}
        assert db.cover(0) == {0, 1, 2, 3, 4}
        assert db.cover(s.parse("D")) == frozenset()

    def test_support_counts(self, db, s):
        assert db.support(s.parse("AB")) == 3
        assert db.support(s.parse("ABC")) == 1
        assert db.support(0) == 5
        assert db.support_of("C") == 2

    def test_support_vs_naive(self, s, rng):
        import repro.core.subsets as sb

        db = random_baskets(s, 60, 0.4, rng)
        for _ in range(40):
            x = rng.randrange(32)
            naive = sum(1 for b in db if sb.is_subset(x, b))
            assert db.support(x) == naive

    def test_is_frequent(self, db, s):
        assert db.is_frequent(s.parse("AB"), 3)
        assert not db.is_frequent(s.parse("AB"), 4)


class TestDensityAndSupportFunction:
    def test_multiset_counts(self, db, s):
        counts = db.multiset_counts()
        assert counts[s.parse("AB")] == 2
        assert counts[s.parse("ABC")] == 1
        assert counts[0] == 1

    def test_support_function_values(self, db, s):
        f = db.support_function()
        for mask in (0, s.parse("A"), s.parse("AB"), s.parse("ABC"), s.parse("D")):
            assert f.value(mask) == db.support(mask)

    def test_dense_support_function_matches(self, db, s):
        dense = db.dense_support_function()
        sparse = db.support_function()
        for mask in s.all_masks():
            assert dense.value(mask) == sparse.value(mask) == db.support(mask)

    def test_density_is_multiset(self, db, s):
        """Remark 2.3 / Section 6.1: d_{s_B} = d^B."""
        dense = db.dense_support_function()
        counts = db.multiset_counts()
        for mask in s.all_masks():
            assert dense.density_value(mask) == counts.get(mask, 0)


class TestUtilities:
    def test_items_present(self, db, s):
        assert db.items_present() == s.parse("ABC")

    def test_extended(self, db, s):
        bigger = db.extended(["DE"])
        assert len(bigger) == 6
        assert bigger.support(s.parse("DE")) == 1

    def test_empty_database(self, s):
        empty = BasketDatabase(s, [])
        assert len(empty) == 0
        assert empty.support(0) == 0
        assert empty.support_function().value(0) == 0
