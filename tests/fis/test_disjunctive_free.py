"""Unit tests for disjunctive / disjunctive-free itemsets (Def 6.2)."""

import pytest

from repro.core import GroundSet
from repro.core import subsets as sb
from repro.fis import (
    BasketDatabase,
    find_disjunctive_rule,
    holds_singleton_rule,
    is_disjunctive,
    is_disjunctive_bruteforce,
    is_disjunctive_free,
    iter_disjunctive_free,
    random_baskets,
)


class TestSingletonRules:
    def test_holds_singleton_rule(self, ground_abcd):
        db = BasketDatabase.of(ground_abcd, "AB", "AC", "BC")
        # every basket with A has B or C
        assert holds_singleton_rule(
            db, ground_abcd.parse("A"), ground_abcd.parse("BC")
        )
        assert not holds_singleton_rule(
            db, ground_abcd.parse("A"), ground_abcd.parse("B")
        )

    def test_rule_found_certifies(self, ground_abcd, rng):
        for _ in range(25):
            db = random_baskets(ground_abcd, rng.randint(1, 15), 0.5, rng)
            for x in ground_abcd.all_masks():
                rule = find_disjunctive_rule(db, x)
                if rule is not None:
                    assert rule.satisfied_by(db)
                    assert not rule.is_trivial
                    assert sb.is_subset(rule.support_set(), x)


class TestDefinition62Reductions:
    def test_general_matches_bruteforce(self, ground_abc, rng):
        """The singleton + maximal-LHS reductions are exact for the
        paper's arbitrary-family definition."""
        for _ in range(25):
            db = random_baskets(ground_abc, rng.randint(1, 8), rng.random(), rng)
            for x in ground_abc.all_masks():
                assert is_disjunctive(db, x) == is_disjunctive_bruteforce(db, x)

    def test_width_monotone(self, ground_abcd, rng):
        """Wider rule budgets can only find more disjunctive sets."""
        for _ in range(15):
            db = random_baskets(ground_abcd, rng.randint(1, 20), 0.5, rng)
            for x in ground_abcd.all_masks():
                w1 = is_disjunctive(db, x, max_rhs=1)
                w2 = is_disjunctive(db, x, max_rhs=2)
                wall = is_disjunctive(db, x, max_rhs=None)
                assert (not w1) or w2  # w1 -> w2
                assert (not w2) or wall

    def test_upward_closed(self, ground_abcd, rng):
        """Supersets of disjunctive sets are disjunctive (the paper's
        augmentation argument)."""
        for _ in range(15):
            db = random_baskets(ground_abcd, rng.randint(1, 20), 0.5, rng)
            for x in ground_abcd.all_masks():
                if is_disjunctive(db, x, max_rhs=2):
                    for sup in sb.iter_supersets(x, ground_abcd.universe_mask):
                        assert is_disjunctive(db, sup, max_rhs=2)


class TestDisjunctiveFree:
    def test_complementarity(self, ground_abcd, rng):
        db = random_baskets(ground_abcd, 12, 0.5, rng)
        for x in ground_abcd.all_masks():
            assert is_disjunctive_free(db, x) != is_disjunctive(db, x)

    def test_iter_disjunctive_free(self, ground_abc, rng):
        db = random_baskets(ground_abc, 8, 0.5, rng)
        free = set(iter_disjunctive_free(db))
        for x in ground_abc.all_masks():
            assert (x in free) == is_disjunctive_free(db, x)

    def test_empty_set_usually_free(self, ground_abcd):
        """(/) is disjunctive only when some single item covers every
        basket or an item never occurs... (rules with empty LHS)."""
        db = BasketDatabase.of(ground_abcd, "AB", "CD")
        assert is_disjunctive_free(db, 0)

    def test_bykowski_rigotti_example_shape(self, ground_abcd):
        """B(X') = B(X'+y1) union B(X'+y2) makes X'+y1+y2 disjunctive."""
        db = BasketDatabase.of(ground_abcd, "AB", "AC", "ABC", "D")
        x = ground_abcd.parse("ABC")
        assert is_disjunctive(db, x, max_rhs=2)
        rule = find_disjunctive_rule(db, x, max_rhs=2)
        assert rule.lhs == ground_abcd.parse("A")
