"""Unit tests for frequency functions / positive(S) (Section 6)."""

import pytest

from repro.core import GroundSet, SetFamily, SetFunction
from repro.errors import NotAFrequencyFunctionError
from repro.fis import (
    BasketDatabase,
    check_differentials_nonnegative,
    induce_basket_database,
    is_frequency_function,
    is_support_function,
    random_baskets,
    semantics_agree_on,
)
from repro.instances import (
    random_constraint,
    random_family,
    random_nonneg_density_function,
    random_set_function,
)


class TestClassMembership:
    def test_support_functions_are_frequency_functions(self, ground_abcd, rng):
        for _ in range(15):
            db = random_baskets(ground_abcd, rng.randint(0, 30), 0.5, rng)
            f = db.dense_support_function()
            assert is_frequency_function(f)
            assert is_support_function(f)

    def test_scaled_nonintegral_is_frequency_not_support(self, ground_abc):
        f = SetFunction.from_density(ground_abc, {"A": 0.5, "BC": 1.5})
        assert is_frequency_function(f)
        assert not is_support_function(f)

    def test_negative_density_excluded(self, ground_abc):
        f = SetFunction.from_density(ground_abc, {"A": 1, "B": -1}, exact=True)
        assert not is_frequency_function(f)
        assert not is_support_function(f)

    def test_zero_function_is_support(self, ground_abc):
        f = SetFunction.zeros(ground_abc, exact=True)
        assert is_support_function(f)  # the empty basket list


class TestDefinitionEquivalence:
    """Nonnegative density iff all Y-differentials nonnegative (Prop 2.9)."""

    def test_nonneg_density_implies_nonneg_differentials(self, ground_abc, rng):
        for _ in range(25):
            f = random_nonneg_density_function(rng, ground_abc)
            families = [
                random_family(rng, ground_abc, max_members=3) for _ in range(8)
            ]
            assert check_differentials_nonnegative(f, families)

    def test_negative_density_shows_in_density_differential(self, ground_abc, rng):
        """d(X) is itself a differential, so a negative density value is a
        negative differential of the density family."""
        from repro.core import density_family_for, differential_value

        for _ in range(40):
            f = random_set_function(rng, ground_abc)
            d = f.density()
            negative_at = next(
                (m for m in ground_abc.all_masks() if d.value(m) < -1e-9), None
            )
            if negative_at is None:
                continue
            fam = density_family_for(ground_abc, negative_at)
            assert differential_value(f, fam, negative_at) < 0


class TestBasketInduction:
    def test_roundtrip(self, ground_abcd, rng):
        for _ in range(10):
            db = random_baskets(ground_abcd, rng.randint(1, 25), 0.4, rng)
            f = db.dense_support_function()
            back = induce_basket_database(f)
            assert sorted(back.baskets) == sorted(db.baskets)

    def test_sparse_roundtrip(self, ground_abcd, rng):
        db = random_baskets(ground_abcd, 20, 0.5, rng)
        back = induce_basket_database(db.support_function())
        assert sorted(back.baskets) == sorted(db.baskets)

    def test_rejects_non_support(self, ground_abc):
        f = SetFunction.from_density(ground_abc, {"A": 0.5})
        with pytest.raises(NotAFrequencyFunctionError):
            induce_basket_database(f)
        g = SetFunction.from_density(ground_abc, {"A": -1}, exact=True)
        with pytest.raises(NotAFrequencyFunctionError):
            induce_basket_database(g)


class TestSemanticsAgreement:
    def test_agree_on_positive(self, ground_abc, rng):
        """Remark 3.6's final point: on positive(S) the density-based and
        differential-based semantics coincide."""
        for _ in range(60):
            f = random_nonneg_density_function(rng, ground_abc)
            c = random_constraint(rng, ground_abc, max_members=2)
            assert semantics_agree_on(f, c)

    def test_can_disagree_outside(self, ground_a):
        from repro.core import DifferentialConstraint

        f = SetFunction.from_dict(ground_a, {"": 0, "A": 1}, exact=True)
        c = DifferentialConstraint(ground_a, 0, SetFamily(ground_a))
        assert not semantics_agree_on(f, c)
