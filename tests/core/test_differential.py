"""Unit tests for the differential operator (Definition 2.1, Prop 2.9)."""

import pytest

from repro.core import (
    GroundSet,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
    density_family_for,
    density_value_by_definition,
    differential_function,
    differential_value,
    differential_via_density,
)
from repro.instances import random_family, random_set_function


class TestDefinition21:
    def test_example_22_expansion(self, ground_abcd, example_22_family, rng):
        f = random_set_function(rng, ground_abcd)
        got = differential_value(f, example_22_family, ground_abcd.parse("A"))
        want = f("A") - f("AB") - f("ACD") + f("ABCD")
        assert got == pytest.approx(want)

    def test_empty_family_is_f_itself(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        fam = SetFamily(ground_abcd)
        for mask in ground_abcd.all_masks():
            assert differential_value(f, fam, mask) == pytest.approx(f.value(mask))

    def test_single_member(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        fam = SetFamily.of(ground_abcd, "BC")
        x = ground_abcd.parse("A")
        want = f("A") - f("ABC")
        assert differential_value(f, fam, x) == pytest.approx(want)

    def test_member_inside_x_cancels(self, ground_abcd, rng):
        # a member Y inside X makes X union Y = X; terms cancel pairwise
        f = random_set_function(rng, ground_abcd)
        fam = SetFamily.of(ground_abcd, "A", "CD")
        x = ground_abcd.parse("AB")
        assert differential_value(f, fam, x) == pytest.approx(0.0)

    def test_sign_counts_members_not_elements(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        fam = SetFamily.of(ground_abcd, "BCD")  # one member, three elements
        want = f("A") - f("ABCD")  # sign (-1)^1, not (-1)^3... same here;
        # distinguish with two members of even total size
        fam2 = SetFamily.of(ground_abcd, "BC", "D")
        want2 = f("A") - f("ABC") - f("AD") + f("ABCD")
        assert differential_value(f, fam, ground_abcd.parse("A")) == pytest.approx(want)
        assert differential_value(f, fam2, ground_abcd.parse("A")) == pytest.approx(want2)


class TestDensityAsDifferential:
    def test_density_family(self, ground_abcd):
        fam = density_family_for(ground_abcd, ground_abcd.parse("A"))
        assert fam == SetFamily.of(ground_abcd, "B", "C", "D")

    def test_example_24_density_expansion(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        got = density_value_by_definition(f, ground_abcd.parse("A"))
        want = (
            f("A") - f("AB") - f("AC") - f("AD")
            + f("ABC") + f("ABD") + f("ACD") - f("ABCD")
        )
        assert got == pytest.approx(want)

    def test_matches_mobius_density(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        for mask in ground_abcd.all_masks():
            assert density_value_by_definition(f, mask) == pytest.approx(
                f.density_value(mask)
            )


class TestProposition29:
    def test_example_210(self, ground_abcd, example_22_family, rng):
        f = random_set_function(rng, ground_abcd)
        d = f.density()
        got = differential_value(f, example_22_family, ground_abcd.parse("A"))
        want = d("A") + d("AC") + d("AD")
        assert got == pytest.approx(want)

    def test_random_instances(self, ground_abcd, rng):
        for _ in range(60):
            f = random_set_function(rng, ground_abcd)
            fam = random_family(rng, ground_abcd, max_members=3)
            x = rng.randrange(16)
            direct = differential_value(f, fam, x)
            via = differential_via_density(f, fam, x)
            assert direct == pytest.approx(via)

    def test_sparse_path(self, ground_abcd, rng):
        density = {rng.randrange(16): rng.randint(1, 4) for _ in range(5)}
        f = SparseDensityFunction(ground_abcd, density)
        fam = SetFamily.of(ground_abcd, "B", "CD")
        for x in ground_abcd.all_masks():
            assert differential_via_density(f, fam, x) == pytest.approx(
                differential_value(f, fam, x)
            )


class TestDifferentialFunction:
    def test_whole_function(self, ground_abc, rng):
        f = random_set_function(rng, ground_abc)
        fam = SetFamily.of(ground_abc, "B")
        table = differential_function(f, fam)
        for mask in ground_abc.all_masks():
            assert table.value(mask) == pytest.approx(
                differential_value(f, fam, mask)
            )
