"""Unit tests for the implication deciders (Theorem 3.5 and friends)."""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    decide,
    fd_closure,
    find_uncovered,
    find_uncovered_sat,
    implies_bitset,
    implies_fd,
    implies_lattice,
    implies_sat,
    in_fd_fragment,
    semantic_implies_over_ideals,
)
from repro.errors import NotApplicableError
from repro.instances import random_constraint, random_constraint_set


class TestExample34:
    def test_transitive_implication(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        for method in ("lattice", "bitset", "sat", "fd", "auto"):
            assert decide(cs, t, method), method

    def test_converse_fails(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "C -> A")
        for method in ("lattice", "bitset", "sat", "fd", "auto"):
            assert not decide(cs, t, method), method


class TestTheorem35:
    def test_all_methods_agree_randomly(self, ground_abcd, rng):
        for _ in range(120):
            cs = random_constraint_set(
                rng, ground_abcd, rng.randint(1, 4), max_members=3,
                allow_empty_member=True,
            )
            t = random_constraint(
                rng, ground_abcd, max_members=3, allow_empty_member=True
            )
            lat = implies_lattice(cs, t)
            bit = implies_bitset(cs, t)
            sat = implies_sat(cs, t)
            sem = semantic_implies_over_ideals(cs, t)
            assert lat == bit == sat == sem

    def test_trivial_target_always_implied(self, ground_abcd, rng):
        t = DifferentialConstraint.parse(ground_abcd, "AB -> B")
        cs = ConstraintSet(ground_abcd)
        assert implies_lattice(cs, t)
        assert implies_sat(cs, t)

    def test_empty_premises_imply_only_trivial(self, ground_abcd, rng):
        cs = ConstraintSet(ground_abcd)
        for _ in range(40):
            t = random_constraint(rng, ground_abcd, max_members=2)
            assert implies_lattice(cs, t) == t.is_trivial

    def test_constraint_implies_itself(self, ground_abcd, rng):
        for _ in range(30):
            c = random_constraint(rng, ground_abcd, max_members=3)
            assert implies_lattice(ConstraintSet(ground_abcd, [c]), c)

    def test_monotonicity_in_premises(self, ground_abcd, rng):
        for _ in range(30):
            cs = random_constraint_set(rng, ground_abcd, 2, max_members=2)
            t = random_constraint(rng, ground_abcd, max_members=2)
            if implies_lattice(cs, t):
                bigger = cs.add(random_constraint(rng, ground_abcd))
                assert implies_lattice(bigger, t)


class TestCertificates:
    def test_uncovered_is_genuine(self, ground_abcd, rng):
        for _ in range(60):
            cs = random_constraint_set(rng, ground_abcd, 2, max_members=2)
            t = random_constraint(rng, ground_abcd, max_members=2)
            u = find_uncovered(cs, t)
            if u is None:
                assert implies_lattice(cs, t)
            else:
                assert t.lattice_contains(u)
                assert not cs.lattice_contains(u)

    def test_sat_certificate_matches(self, ground_abcd, rng):
        for _ in range(60):
            cs = random_constraint_set(rng, ground_abcd, 2, max_members=2)
            t = random_constraint(rng, ground_abcd, max_members=2)
            u = find_uncovered_sat(cs, t)
            if u is None:
                assert implies_lattice(cs, t)
            else:
                assert t.lattice_contains(u)
                assert not cs.lattice_contains(u)


class TestFdFragment:
    def test_fragment_detection(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        assert in_fd_fragment(cs, t)
        t2 = DifferentialConstraint.parse(ground_abc, "A -> B, C")
        assert not in_fd_fragment(cs, t2)

    def test_fd_requires_fragment(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B, C")
        t = DifferentialConstraint.parse(ground_abc, "A -> B")
        with pytest.raises(NotApplicableError):
            implies_fd(cs, t)

    def test_fd_agrees_with_lattice(self, ground_abcd, rng):
        """The paper's conclusion: the singleton-RHS fragment is FD
        implication."""
        for _ in range(150):
            constraints = []
            for _ in range(rng.randint(1, 4)):
                lhs = rng.randrange(16)
                member = rng.randrange(16)
                constraints.append(
                    DifferentialConstraint(
                        ground_abcd, lhs, SetFamily(ground_abcd, [member])
                    )
                )
            cs = ConstraintSet(ground_abcd, constraints)
            t = DifferentialConstraint(
                ground_abcd,
                rng.randrange(16),
                SetFamily(ground_abcd, [rng.randrange(16)]),
            )
            assert implies_fd(cs, t) == implies_lattice(cs, t)

    def test_closure_fixpoint(self):
        # {A->B, B->C}: closure(A) = ABC; closure(D) = D
        fds = [(0b0001, 0b0010), (0b0010, 0b0100)]
        assert fd_closure(0b1111, 0b0001, fds) == 0b0111
        assert fd_closure(0b1111, 0b1000, fds) == 0b1000

    def test_auto_routes_to_fd(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "A -> B")
        assert decide(cs, t, "auto")


class TestEdgeConstraints:
    def test_everything_constraint_implies_all(self, ground_abc, rng):
        everything = DifferentialConstraint(ground_abc, 0, SetFamily(ground_abc))
        cs = ConstraintSet(ground_abc, [everything])
        for _ in range(30):
            t = random_constraint(
                rng, ground_abc, max_members=2, allow_empty_member=True
            )
            assert implies_lattice(cs, t)
            assert implies_sat(cs, t)

    def test_empty_family_target(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "A -> ")
        assert not implies_lattice(cs, t)
        assert not implies_sat(cs, t)

    def test_unknown_method_rejected(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "A -> B")
        with pytest.raises(ValueError):
            decide(cs, t, "nope")
