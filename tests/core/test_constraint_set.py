"""Unit tests for constraint sets and the joint lattice L(C)."""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
)
from repro.instances import (
    random_constraint,
    random_constraint_set,
    random_nonneg_density_function,
    random_set_function,
)


class TestConstruction:
    def test_of_parses(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        assert len(cs) == 2
        assert DifferentialConstraint.parse(ground_abc, "A -> B") in cs

    def test_deduplication(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "A -> B")
        assert len(cs) == 1

    def test_mixed_specs(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "B -> C")
        cs = ConstraintSet.of(ground_abc, "A -> B", c)
        assert len(cs) == 2

    def test_add_remove(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        c = DifferentialConstraint.parse(ground_abc, "B -> C")
        grown = cs.add(c)
        assert len(grown) == 2
        assert grown.remove(c) == cs

    def test_equality_order_independent(self, ground_abc):
        a = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        b = ConstraintSet.of(ground_abc, "B -> C", "A -> B")
        assert a == b
        assert hash(a) == hash(b)


class TestJointLattice:
    def test_lattice_contains_is_union(self, ground_abcd, rng):
        for _ in range(30):
            cs = random_constraint_set(rng, ground_abcd, 3, max_members=2)
            for u in ground_abcd.all_masks():
                want = any(c.lattice_contains(u) for c in cs)
                assert cs.lattice_contains(u) == want

    def test_iter_lattice_sorted_unique(self, ground_abcd, rng):
        cs = random_constraint_set(rng, ground_abcd, 3, max_members=2)
        masks = list(cs.iter_lattice())
        assert masks == sorted(set(masks))

    def test_bitset_matches(self, ground_abcd, rng):
        cs = random_constraint_set(rng, ground_abcd, 3, max_members=2)
        table = cs.lattice_bitset()
        for u in ground_abcd.all_masks():
            assert bool(table[u]) == cs.lattice_contains(u)

    def test_bitset_cached(self, ground_abcd, rng):
        cs = random_constraint_set(rng, ground_abcd, 2)
        assert cs.lattice_bitset() is cs.lattice_bitset()


class TestSatisfaction:
    def test_satisfied_by_all(self, ground_abc, example_32_function):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        assert cs.satisfied_by(example_32_function)
        cs_bad = cs.add(DifferentialConstraint.parse(ground_abc, "C -> A"))
        assert not cs_bad.satisfied_by(example_32_function)

    def test_satisfaction_characterizes_lattice(self, ground_abc, rng):
        """f satisfies C iff density vanishes exactly on L(C)."""
        for _ in range(30):
            cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
            f = random_nonneg_density_function(rng, ground_abc, zero_probability=0.7)
            sat = cs.satisfied_by(f)
            violates = any(
                abs(f.density_value(u)) > 1e-9 for u in cs.iter_lattice()
            )
            assert sat == (not violates)


class TestImplicationFacade:
    def test_implies_string_target(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        assert cs.implies("A -> C")
        assert not cs.implies("C -> A")

    def test_methods_agree(self, ground_abcd, rng):
        for _ in range(30):
            cs = random_constraint_set(rng, ground_abcd, 2, max_members=2)
            t = random_constraint(rng, ground_abcd, max_members=2)
            assert cs.implies(t, "lattice") == cs.implies(t, "sat") == cs.implies(t, "bitset")


class TestCovers:
    def test_redundant_constraint_removed(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C", "A -> C")
        cover = cs.minimal_cover()
        assert len(cover) == 2
        assert cover.equivalent_to(cs)

    def test_minimal_cover_no_redundancy(self, ground_abcd, rng):
        for _ in range(15):
            cs = random_constraint_set(rng, ground_abcd, 4, max_members=2)
            cover = cs.minimal_cover()
            assert cover.equivalent_to(cs)
            for c in cover:
                assert not cover.is_redundant(c)

    def test_trivial_constraints_always_redundant(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "AB -> B", "A -> C")
        cover = cs.minimal_cover()
        assert DifferentialConstraint.parse(ground_abc, "AB -> B") not in cover

    def test_equivalent_to_reflexive(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        assert cs.equivalent_to(cs)

    def test_equivalent_atomic_representation(self, ground_abc, rng):
        from repro.core import atomic_representation

        for _ in range(10):
            cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
            rep = atomic_representation(cs)
            assert rep.equivalent_to(cs)
