"""Unit tests for proof objects, builders and the checker."""

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily, check_proof
from repro.core import proofs as P
from repro.core import rules as R
from repro.errors import InvalidProofError


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABCD")


def _parse(s, text):
    return DifferentialConstraint.parse(s, text)


class TestBuilders:
    def test_axiom_and_triviality(self, s):
        a = P.axiom(_parse(s, "A -> B"))
        assert a.rule == R.AXIOM and a.size() == 1
        t = P.triviality(_parse(s, "AB -> B"))
        assert t.rule == R.TRIVIALITY

    def test_triviality_rejects_nontrivial(self, s):
        with pytest.raises(InvalidProofError):
            P.triviality(_parse(s, "A -> B"))

    def test_augmentation_builder(self, s):
        p = P.augmentation(P.axiom(_parse(s, "A -> B")), s.parse("CD"))
        assert p.conclusion == _parse(s, "ACD -> B")
        assert p.size() == 2

    def test_addition_builder(self, s):
        p = P.addition(P.axiom(_parse(s, "A -> B")), s.parse("CD"))
        assert p.conclusion == _parse(s, "A -> B, CD")

    def test_elimination_builder(self, s):
        p1 = P.axiom(_parse(s, "A -> B, CD"))
        p2 = P.axiom(_parse(s, "ACD -> B"))
        p = P.elimination(p1, p2, s.parse("CD"))
        assert p.conclusion == _parse(s, "A -> B")
        assert p.size() == 3

    def test_elimination_builder_rejects_mismatch(self, s):
        p1 = P.axiom(_parse(s, "A -> B, CD"))
        p2 = P.axiom(_parse(s, "AC -> B"))  # wrong augmented LHS
        with pytest.raises(InvalidProofError):
            P.elimination(p1, p2, s.parse("CD"))

    def test_projection_builder(self, s):
        p = P.projection(
            P.axiom(_parse(s, "A -> BC, CD")), s.parse("BC"), s.parse("C")
        )
        assert p.conclusion == _parse(s, "A -> C, CD")

    def test_separation_builder(self, s):
        p = P.separation(
            P.axiom(_parse(s, "A -> CD")), s.parse("CD"), s.parse("C"), s.parse("D")
        )
        assert p.conclusion == _parse(s, "A -> C, D")

    def test_union_builder(self, s):
        base = SetFamily.of(s, "B")
        p1 = P.axiom(DifferentialConstraint(s, s.parse("A"), base.add(s.parse("C"))))
        p2 = P.axiom(DifferentialConstraint(s, s.parse("A"), base.add(s.parse("D"))))
        p = P.union_rule(p1, p2, s.parse("C"), s.parse("D"), base)
        assert p.conclusion == _parse(s, "A -> B, CD")

    def test_transitivity_builder(self, s):
        base = SetFamily(s)
        p1 = P.axiom(_parse(s, "A -> B"))
        p2 = P.axiom(_parse(s, "B -> C"))
        p = P.transitivity(p1, p2, s.parse("B"), s.parse("C"), base)
        assert p.conclusion == _parse(s, "A -> C")

    def test_chain_builder(self, s):
        base = SetFamily(s)
        p1 = P.axiom(_parse(s, "A -> B"))
        p2 = P.axiom(_parse(s, "AB -> C"))
        p = P.chain(p1, p2, s.parse("B"), s.parse("C"), base)
        assert p.conclusion == _parse(s, "A -> BC")

    def test_absorption_builder(self, s):
        p = P.absorption(P.axiom(_parse(s, "AB -> C")), s.parse("C"), s.parse("AC"))
        assert p.conclusion == _parse(s, "AB -> AC")


class TestProofStructure:
    def _example_proof(self, s):
        """The Example 4.3 derivation, built with macro rules."""
        given_b = P.axiom(_parse(s, "A -> BC, CD"))
        given_a = P.axiom(_parse(s, "C -> D"))
        step_c = P.projection(given_b, s.parse("CD"), s.parse("C"))
        step_d = P.projection(step_c, s.parse("BC"), s.parse("C"))
        step_e = P.augmentation(step_d, s.parse("B"))
        final = P.transitivity(
            step_e, given_a, s.parse("C"), s.parse("D"), SetFamily(s)
        )
        return final

    def test_example_43(self, s):
        proof = self._example_proof(s)
        assert proof.conclusion == _parse(s, "AB -> D")
        assert proof.size() == 6
        check_proof(
            proof,
            [_parse(s, "A -> BC, CD"), _parse(s, "C -> D")],
        )

    def test_format_contains_steps(self, s):
        text = self._example_proof(s).format()
        assert "given" in text
        assert "projection" in text
        assert "transitivity" in text
        assert "(6)" in text

    def test_depth(self, s):
        proof = self._example_proof(s)
        assert proof.depth() == 5

    def test_rule_counts(self, s):
        counts = self._example_proof(s).rule_counts()
        assert counts[R.AXIOM] == 2
        assert counts[R.PROJECTION] == 2

    def test_shared_nodes_counted_once(self, s):
        shared = P.axiom(_parse(s, "A -> B"))
        p1 = P.addition(shared, s.parse("C"))
        p2 = P.addition(shared, s.parse("D"))
        base = SetFamily.of(s, "B")
        # build a union proof over the shared axiom
        merged = P.union_rule(p1, p2, s.parse("C"), s.parse("D"), base)
        assert merged.size() == 4  # axiom shared, not 5

    def test_uses_only_primitives(self, s):
        proof = self._example_proof(s)
        assert not proof.uses_only_primitives()
        assert proof.expand().uses_only_primitives()


class TestChecker:
    def test_checker_rejects_foreign_axiom(self, s):
        proof = P.axiom(_parse(s, "A -> B"))
        with pytest.raises(InvalidProofError):
            check_proof(proof, [_parse(s, "B -> C")])

    def test_checker_primitive_mode(self, s):
        macro = P.projection(
            P.axiom(_parse(s, "A -> BC")), s.parse("BC"), s.parse("B")
        )
        check_proof(macro, [_parse(s, "A -> BC")], allow_derived=True)
        with pytest.raises(InvalidProofError):
            check_proof(macro, [_parse(s, "A -> BC")], allow_derived=False)
        check_proof(
            macro.expand(), [_parse(s, "A -> BC")], allow_derived=False
        )

    def test_checker_accepts_triviality_leaves(self, s):
        proof = P.triviality(_parse(s, "AB -> B"))
        check_proof(proof, [])
