"""Tests for Armstrong functions/databases (generic witnesses)."""

import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet
from repro.core.armstrong import armstrong_database, armstrong_function
from repro.core.implication import implies_lattice
from repro.fis import DisjunctiveConstraint, is_support_function
from repro.instances import random_constraint, random_constraint_set


class TestArmstrongFunction:
    def test_satisfies_exactly_the_consequences(self, ground_abcd, rng):
        """f_C satisfies c iff C |= c -- the defining property."""
        for _ in range(25):
            cset = random_constraint_set(rng, ground_abcd, 3, max_members=2)
            f = armstrong_function(cset)
            for _ in range(15):
                c = random_constraint(
                    rng, ground_abcd, max_members=2, allow_empty_member=True
                )
                assert c.satisfied_by(f) == implies_lattice(cset, c)

    def test_satisfies_the_generators(self, ground_abcd, rng):
        for _ in range(10):
            cset = random_constraint_set(rng, ground_abcd, 3, max_members=2)
            f = armstrong_function(cset)
            assert cset.satisfied_by(f)

    def test_is_support_function(self, ground_abc, rng):
        cset = random_constraint_set(rng, ground_abc, 2, max_members=2)
        assert is_support_function(armstrong_function(cset))
        dense = armstrong_function(cset, sparse=False)
        assert is_support_function(dense)

    def test_empty_constraint_set_fully_generic(self, ground_abc, rng):
        """With no constraints, only trivial constraints are satisfied."""
        cset = ConstraintSet(ground_abc)
        f = armstrong_function(cset)
        for _ in range(30):
            c = random_constraint(rng, ground_abc, max_members=2)
            assert c.satisfied_by(f) == c.is_trivial

    def test_everything_constraint_gives_zero(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, " -> ")
        f = armstrong_function(cset)
        for mask in ground_abc.all_masks():
            assert f.value(mask) == 0

    def test_sparse_and_dense_agree(self, ground_abc, rng):
        cset = random_constraint_set(rng, ground_abc, 2, max_members=2)
        sparse = armstrong_function(cset, sparse=True)
        dense = armstrong_function(cset, sparse=False)
        for mask in ground_abc.all_masks():
            assert sparse.value(mask) == dense.value(mask)


class TestArmstrongDatabase:
    def test_disjunctive_constraints_exactly_consequences(self, ground_abc, rng):
        """Prop 6.3 carries the Armstrong property to basket lists."""
        for _ in range(15):
            cset = random_constraint_set(rng, ground_abc, 2, max_members=2)
            db = armstrong_database(cset)
            for _ in range(12):
                c = random_constraint(rng, ground_abc, max_members=2)
                disj = DisjunctiveConstraint.from_differential(c)
                assert disj.satisfied_by(db) == implies_lattice(cset, c)

    def test_database_matches_function(self, ground_abc, rng):
        cset = random_constraint_set(rng, ground_abc, 2, max_members=2)
        db = armstrong_database(cset)
        f = armstrong_function(cset)
        for mask in ground_abc.all_masks():
            assert db.support(mask) == f.value(mask)

    def test_example_34_armstrong(self, ground_abc):
        """The Armstrong list for {A->B, B->C} refutes every non-consequence."""
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        db = armstrong_database(cset)
        sb = db.support_function()
        assert DifferentialConstraint.parse(ground_abc, "A -> C").satisfied_by(sb)
        assert not DifferentialConstraint.parse(ground_abc, "C -> B").satisfied_by(sb)
        assert not DifferentialConstraint.parse(ground_abc, "B -> A").satisfied_by(sb)
