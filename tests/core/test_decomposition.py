"""Unit tests for decomp/atoms (Definition 4.4, Remark 4.5)."""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    atom,
    atoms,
    decomp,
)
from repro.core.implication import implies_lattice
from repro.instances import random_constraint


class TestPaperExamples:
    def test_decomp_example(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        got = set(decomp(c))
        want = {
            DifferentialConstraint.parse(ground_abcd, t)
            for t in ("A -> B, C", "A -> B, D", "A -> B, C, D")
        }
        assert got == want

    def test_atoms_example(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        got = set(atoms(c))
        want = {
            DifferentialConstraint.parse(ground_abcd, t)
            for t in ("A -> B, C, D", "AC -> B, D", "AD -> B, C")
        }
        assert got == want


class TestRemark45:
    """{X -> Y}* = decomp* = atoms* (equal lattice closures)."""

    def _lattice_of(self, constraints, ground):
        cs = ConstraintSet(ground, constraints)
        return set(cs.iter_lattice())

    def test_equal_lattices_random(self, ground_abcd, rng):
        for _ in range(50):
            c = random_constraint(rng, ground_abcd, max_members=3)
            own = set(c.iter_lattice())
            assert self._lattice_of(decomp(c), ground_abcd) == own
            assert self._lattice_of(atoms(c), ground_abcd) == own

    def test_mutual_implication(self, ground_abcd, rng):
        for _ in range(25):
            c = random_constraint(rng, ground_abcd, max_members=2, min_members=1)
            dec = ConstraintSet(ground_abcd, decomp(c))
            ato = ConstraintSet(ground_abcd, atoms(c))
            single = ConstraintSet(ground_abcd, [c])
            # each representation implies the others' members
            for member in dec:
                assert implies_lattice(single, member)
                assert implies_lattice(ato, member)
            for member in ato:
                assert implies_lattice(single, member)
                assert implies_lattice(dec, member)
            assert implies_lattice(dec, c)
            assert implies_lattice(ato, c)


class TestShapes:
    def test_atoms_count_equals_lattice_size(self, ground_abcd, rng):
        for _ in range(30):
            c = random_constraint(rng, ground_abcd, max_members=3)
            assert len(atoms(c)) == len(c.lattice_set())

    def test_atoms_of_trivial_empty(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "AB -> B")
        assert atoms(c) == []

    def test_decomp_of_empty_family(self, ground_abcd):
        """W((/)) = {(/)}: decomp of X -> {} is {X -> {}} itself."""
        c = DifferentialConstraint.parse(ground_abcd, "AB -> ")
        assert decomp(c) == [c]

    def test_decomp_members_have_singleton_families(self, ground_abcd, rng):
        for _ in range(30):
            c = random_constraint(rng, ground_abcd, max_members=3, min_members=1)
            for member in decomp(c):
                assert member.family.all_singletons()
                assert member.lhs == c.lhs

    def test_atom_constructor_matches_module_function(self, ground_abcd):
        u = ground_abcd.parse("BD")
        assert atom(ground_abcd, u) == DifferentialConstraint.atom(ground_abcd, u)

    def test_decomp_of_all_singleton_family_is_self(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, C")
        assert decomp(c) == [c]
