"""Unit tests for differential constraints (Definition 3.1, Remark 3.6)."""

import pytest

from repro.core import (
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    SparseDensityFunction,
)
from repro.errors import InvalidConstraintError


class TestConstructionAndParsing:
    def test_of(self, ground_abcd):
        c = DifferentialConstraint.of(ground_abcd, "A", "B", "CD")
        assert c.lhs == ground_abcd.parse("A")
        assert c.family == SetFamily.of(ground_abcd, "B", "CD")

    def test_parse_basic(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        assert c == DifferentialConstraint.of(ground_abcd, "A", "B", "CD")

    def test_parse_empty_family(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "AB -> ")
        assert len(c.family) == 0

    def test_parse_empty_lhs(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, " -> B")
        assert c.lhs == 0

    def test_parse_braces(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> {B, CD}")
        assert c == DifferentialConstraint.of(ground_abcd, "A", "B", "CD")

    def test_parse_missing_arrow(self, ground_abcd):
        with pytest.raises(InvalidConstraintError):
            DifferentialConstraint.parse(ground_abcd, "A B")

    def test_repr_paper_style(self, ground_abcd):
        c = DifferentialConstraint.of(ground_abcd, "A", "B", "CD")
        assert repr(c) == "A -> {B, CD}"

    def test_equality_hash(self, ground_abcd):
        a = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        b = DifferentialConstraint.parse(ground_abcd, "A -> CD, B")
        assert a == b
        assert hash(a) == hash(b)


class TestTriviality:
    def test_trivial_when_member_inside_lhs(self, ground_abcd):
        assert DifferentialConstraint.parse(ground_abcd, "AB -> B, CD").is_trivial
        assert DifferentialConstraint.parse(ground_abcd, "AB -> A").is_trivial

    def test_empty_member_always_trivial(self, ground_abcd):
        c = DifferentialConstraint(
            ground_abcd, 0, SetFamily(ground_abcd, [0])
        )
        assert c.is_trivial

    def test_nontrivial(self, ground_abcd):
        assert not DifferentialConstraint.parse(ground_abcd, "A -> B").is_trivial
        assert not DifferentialConstraint.parse(ground_abcd, "A -> ").is_trivial

    def test_trivial_iff_empty_lattice(self, ground_abcd, rng):
        from repro.instances import random_constraint

        for _ in range(60):
            c = random_constraint(
                rng, ground_abcd, max_members=3, allow_empty_member=True
            )
            assert c.is_trivial == (not c.lattice_set())


class TestAtoms:
    def test_atom_shape(self, ground_abcd):
        u = ground_abcd.parse("AC")
        c = DifferentialConstraint.atom(ground_abcd, u)
        assert c.lhs == u
        assert c.family == SetFamily.of(ground_abcd, "B", "D")
        assert c.is_atomic()

    def test_atom_of_universe(self, ground_abcd):
        c = DifferentialConstraint.atom(ground_abcd, ground_abcd.universe_mask)
        assert len(c.family) == 0
        assert c.is_atomic()

    def test_atom_lattice_is_singleton(self, ground_abcd):
        """Remark 4.5: L(U, U-bar-complement) = {U}."""
        for u in ground_abcd.all_masks():
            c = DifferentialConstraint.atom(ground_abcd, u)
            assert c.lattice_set() == {u}

    def test_is_atomic_negative(self, ground_abcd):
        assert not DifferentialConstraint.parse(ground_abcd, "A -> B").is_atomic()


class TestSatisfaction:
    def test_example_32(self, ground_abc, example_32_function):
        f = example_32_function
        assert DifferentialConstraint.parse(ground_abc, "A -> B").satisfied_by(f)
        assert DifferentialConstraint.parse(ground_abc, "B -> C").satisfied_by(f)
        assert not DifferentialConstraint.parse(ground_abc, "C -> A").satisfied_by(f)

    def test_trivial_satisfied_by_everything(self, ground_abc, rng):
        from repro.instances import random_set_function

        c = DifferentialConstraint.parse(ground_abc, "AB -> B")
        for _ in range(10):
            assert c.satisfied_by(random_set_function(rng, ground_abc))

    def test_sparse_and_dense_agree(self, ground_abc, rng):
        from repro.instances import random_constraint

        density = {rng.randrange(8): rng.randint(1, 3) for _ in range(3)}
        sparse = SparseDensityFunction(ground_abc, density)
        dense = SetFunction.from_density(ground_abc, dict(density), exact=True)
        for _ in range(40):
            c = random_constraint(rng, ground_abc, max_members=2)
            assert c.satisfied_by(sparse) == c.satisfied_by(dense)

    def test_tolerance(self, ground_abc):
        f = SetFunction.from_density(ground_abc, {0b001: 1e-12})
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        assert c.satisfied_by(f)  # below tolerance
        assert not c.satisfied_by(f, tol=1e-15)

    def test_unknown_semantics_rejected(self, ground_abc, example_32_function):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        with pytest.raises(ValueError):
            c.satisfied_by(example_32_function, semantics="nope")


class TestRemark36:
    """Density semantics is strictly stronger than differential semantics."""

    def test_counterexample(self, ground_a):
        f = SetFunction.from_dict(ground_a, {"": 0, "A": 1}, exact=True)
        d = f.density()
        assert d("") == -1 and d("A") == 1
        c = DifferentialConstraint(ground_a, 0, SetFamily(ground_a))
        assert not c.satisfied_by(f, semantics="density")
        assert c.satisfied_by(f, semantics="differential")

    def test_density_implies_differential(self, ground_abc, rng):
        """Prop 2.9 direction: density satisfaction forces D^Y(X) = 0."""
        from repro.instances import random_constraint, random_set_function

        for _ in range(60):
            f = random_set_function(rng, ground_abc)
            c = random_constraint(rng, ground_abc, max_members=2)
            if c.satisfied_by(f, semantics="density"):
                assert c.satisfied_by(f, semantics="differential")

    def test_semantics_agree_on_nonneg_density(self, ground_abc, rng):
        from repro.instances import (
            random_constraint,
            random_nonneg_density_function,
        )

        for _ in range(60):
            f = random_nonneg_density_function(rng, ground_abc)
            c = random_constraint(rng, ground_abc, max_members=2)
            assert c.satisfied_by(f, "density") == c.satisfied_by(
                f, "differential"
            )


class TestLatticeAccessors:
    def test_lattice_set_cached(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        assert c.lattice_set() is c.lattice_set()

    def test_lattice_contains(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        for u in ground_abcd.all_masks():
            assert c.lattice_contains(u) == (u in c.lattice_set())

    def test_has_singleton_family(self, ground_abcd):
        assert DifferentialConstraint.parse(ground_abcd, "A -> BC").has_singleton_family()
        assert not DifferentialConstraint.parse(ground_abcd, "A -> B, C").has_singleton_family()
        assert not DifferentialConstraint.parse(ground_abcd, "A -> ").has_singleton_family()
