"""Unit tests for Theorem 3.5 counterexample functions."""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    principal_ideal_function,
    refute,
    sparse_principal_ideal_function,
)
from repro.core.implication import implies_lattice
from repro.instances import random_constraint, random_constraint_set


class TestPrincipalIdealFunction:
    def test_values(self, ground_abc):
        u = ground_abc.parse("AB")
        f = principal_ideal_function(ground_abc, u, c=3)
        for mask in ground_abc.all_masks():
            want = 3 if mask & ~u == 0 else 0
            assert f.value(mask) == want

    def test_density_is_delta(self, ground_abc):
        u = ground_abc.parse("AB")
        f = principal_ideal_function(ground_abc, u, c=5)
        for mask in ground_abc.all_masks():
            assert f.density_value(mask) == (5 if mask == u else 0)

    def test_sparse_matches_dense(self, ground_abc):
        u = ground_abc.parse("AC")
        dense = principal_ideal_function(ground_abc, u, c=2)
        sparse = sparse_principal_ideal_function(ground_abc, u, c=2)
        for mask in ground_abc.all_masks():
            assert sparse.value(mask) == dense.value(mask)

    def test_zero_constant_rejected(self, ground_abc):
        with pytest.raises(ValueError):
            principal_ideal_function(ground_abc, 0, c=0)
        with pytest.raises(ValueError):
            sparse_principal_ideal_function(ground_abc, 0, c=0)

    def test_is_frequency_and_support_function(self, ground_abc):
        """With c = 1 the counterexample lives in support(S) (Prop 6.4)."""
        from repro.fis import is_frequency_function, is_support_function

        f = principal_ideal_function(ground_abc, ground_abc.parse("B"))
        assert is_frequency_function(f)
        assert is_support_function(f)


class TestRefute:
    def test_refutation_properties(self, ground_abcd, rng):
        refuted = 0
        for _ in range(80):
            cs = random_constraint_set(rng, ground_abcd, 2, max_members=2)
            t = random_constraint(rng, ground_abcd, max_members=2)
            f = refute(cs, t)
            if f is None:
                assert implies_lattice(cs, t)
            else:
                refuted += 1
                assert cs.satisfied_by(f)
                assert not t.satisfied_by(f)
        assert refuted > 10  # the sweep must actually exercise refutation

    def test_dense_mode(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "B -> A")
        f = refute(cs, t, sparse=False)
        assert f is not None
        assert cs.satisfied_by(f) and not t.satisfied_by(f)

    def test_scaled_counterexample(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "B -> A")
        f = refute(cs, t, c=7.5)
        assert f is not None
        assert not t.satisfied_by(f)

    def test_none_when_implied(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        assert refute(cs, t) is None
