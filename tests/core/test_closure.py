"""Tests for the implied-constraint oracle and atomic representations."""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    ImpliedConstraintOracle,
    atom,
    atomic_representation,
)
from repro.instances import random_constraint_set


class TestAtomicRepresentation:
    def test_equivalence(self, ground_abc, rng):
        for _ in range(20):
            cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
            rep = atomic_representation(cs)
            assert rep.equivalent_to(cs)

    def test_canonical_for_equivalent_sets(self, ground_abc):
        a = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        b = ConstraintSet.of(ground_abc, "A -> B", "B -> C", "A -> C")
        assert atomic_representation(a) == atomic_representation(b)

    def test_members_are_atoms(self, ground_abc, rng):
        cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
        for c in atomic_representation(cs):
            assert c.is_atomic()


class TestOracle:
    def test_membership_matches_decide(self, ground_abc, rng):
        from repro.core.implication import decide
        from repro.instances import random_constraint

        cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
        oracle = ImpliedConstraintOracle(cs)
        for _ in range(40):
            c = random_constraint(rng, ground_abc, max_members=2)
            assert (c in oracle) == decide(cs, c, "lattice")

    def test_atomic_closure_is_lattice(self, ground_abc, rng):
        cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
        oracle = ImpliedConstraintOracle(cs)
        assert oracle.atomic_closure() == list(cs.iter_lattice())
        for u in oracle.atomic_closure():
            assert atom(ground_abc, u) in oracle

    def test_iter_implied_bounded(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        oracle = ImpliedConstraintOracle(cs)
        singles = list(ground_abc.singletons())
        implied = list(
            oracle.iter_implied(
                lhs_candidates=singles,
                member_pool=singles,
                max_family_size=1,
            )
        )
        # the nontrivial singleton consequences include A->B, B->C, A->C
        texts = {repr(c) for c in implied}
        assert "A -> {B}" in texts
        assert "B -> {C}" in texts
        assert "A -> {C}" in texts
        assert "C -> {A}" not in texts

    def test_iter_implied_include_trivial(self, ground_abc):
        cs = ConstraintSet(ground_abc)
        oracle = ImpliedConstraintOracle(cs)
        singles = list(ground_abc.singletons())
        with_trivial = list(
            oracle.iter_implied(singles, singles, 1, include_trivial=True)
        )
        without = list(oracle.iter_implied(singles, singles, 1))
        assert len(with_trivial) > len(without)
        assert without == []  # empty C implies only trivial constraints

    def test_closure_same_through_sat(self, ground_abc, rng):
        cs = random_constraint_set(rng, ground_abc, 2, max_members=2)
        lattice_oracle = ImpliedConstraintOracle(cs, method="lattice")
        sat_oracle = ImpliedConstraintOracle(cs, method="sat")
        singles = list(ground_abc.singletons())
        a = list(lattice_oracle.iter_implied(singles, singles, 2))
        b = list(sat_oracle.iter_implied(singles, singles, 2))
        assert a == b
