"""Tests for the constructive completeness engine (Theorem 4.8 / E1)."""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    check_proof,
    derive,
)
from repro.core.derivation import derivation_size
from repro.core.implication import implies_lattice
from repro.errors import NotImpliedError
from repro.instances import (
    random_constraint,
    random_constraint_set,
    random_implied_pair,
)


class TestPaperDerivations:
    def test_example_34(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        proof = derive(cs, t, allow_derived=False)
        assert proof.conclusion == t
        assert proof.uses_only_primitives()
        check_proof(proof, cs.constraints, allow_derived=False)

    def test_example_43(self, ground_abcd):
        cs = ConstraintSet.of(ground_abcd, "A -> BC, CD", "C -> D")
        t = DifferentialConstraint.parse(ground_abcd, "AB -> D")
        proof = derive(cs, t, allow_derived=False)
        assert proof.conclusion == t
        check_proof(proof, cs.constraints, allow_derived=False)


class TestCompleteness:
    def test_random_implied_instances(self, ground_abcd, rng):
        derived = 0
        for _ in range(150):
            cs = random_constraint_set(
                rng, ground_abcd, rng.randint(1, 4), max_members=3
            )
            t = random_constraint(rng, ground_abcd, max_members=3)
            if not implies_lattice(cs, t):
                continue
            derived += 1
            proof = derive(cs, t, allow_derived=False)
            assert proof.conclusion == t
            check_proof(proof, cs.constraints, allow_derived=False)
        assert derived >= 20

    def test_planted_pairs_all_modes(self, ground_abcd, rng):
        for mode in ("atoms", "decomp", "self"):
            for _ in range(25):
                cs, t = random_implied_pair(rng, ground_abcd, mode=mode)
                proof = derive(cs, t, allow_derived=False)
                assert proof.conclusion == t
                check_proof(proof, cs.constraints, allow_derived=False)

    def test_macro_mode_also_checks(self, ground_abcd, rng):
        for _ in range(25):
            cs, t = random_implied_pair(rng, ground_abcd)
            proof = derive(cs, t, allow_derived=True)
            check_proof(proof, cs.constraints, allow_derived=True)

    def test_five_element_ground_set(self, ground_5, rng):
        for _ in range(10):
            cs, t = random_implied_pair(rng, ground_5, max_members=2)
            proof = derive(cs, t, allow_derived=False)
            assert proof.conclusion == t
            check_proof(proof, cs.constraints, allow_derived=False)


class TestRefusal:
    def test_not_implied_raises_with_certificate(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B")
        t = DifferentialConstraint.parse(ground_abc, "B -> A")
        with pytest.raises(NotImpliedError) as err:
            derive(cs, t)
        u = err.value.uncovered_mask
        assert t.lattice_contains(u)
        assert not cs.lattice_contains(u)

    def test_refusals_on_random_non_implied(self, ground_abcd, rng):
        refused = 0
        for _ in range(60):
            cs = random_constraint_set(rng, ground_abcd, 2, max_members=2)
            t = random_constraint(rng, ground_abcd, max_members=2)
            if implies_lattice(cs, t):
                continue
            refused += 1
            with pytest.raises(NotImpliedError):
                derive(cs, t)
        assert refused >= 10


class TestFastPaths:
    def test_trivial_target(self, ground_abcd):
        cs = ConstraintSet(ground_abcd)
        t = DifferentialConstraint.parse(ground_abcd, "AB -> B")
        proof = derive(cs, t)
        assert proof.rule == "triviality"
        assert proof.size() == 1

    def test_axiom_target(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        cs = ConstraintSet(ground_abcd, [c])
        proof = derive(cs, c)
        assert proof.rule == "axiom"
        assert proof.size() == 1

    def test_empty_family_target(self, ground_abc):
        """X -> {} derivations exercise the full elimination cascade."""
        everything = DifferentialConstraint.parse(ground_abc, " -> ")
        cs = ConstraintSet(ground_abc, [everything])
        t = DifferentialConstraint.parse(ground_abc, "A -> ")
        proof = derive(cs, t, allow_derived=False)
        assert proof.conclusion == t
        check_proof(proof, cs.constraints, allow_derived=False)


class TestSubsumptionFastPath:
    def test_augmentation_addition_subsumption(self, ground_abcd):
        cset = ConstraintSet.of(ground_abcd, "A -> B")
        t = DifferentialConstraint.parse(ground_abcd, "AC -> B, D")
        proof = derive(cset, t)
        # one axiom + one augmentation + one addition
        assert proof.size() == 3
        check_proof(proof, cset.constraints, allow_derived=False)

    def test_exact_premise_after_normalization(self, ground_abcd):
        cset = ConstraintSet.of(ground_abcd, "A -> B, CD")
        t = DifferentialConstraint.parse(ground_abcd, "A -> CD, B")
        proof = derive(cset, t)
        assert proof.size() == 1  # same constraint, family order ignored

    def test_fast_path_proofs_much_smaller(self, ground_abcd, rng):
        """When subsumption applies the proof is O(|S|), not exponential."""
        from repro.instances import random_constraint

        for _ in range(30):
            c = random_constraint(rng, ground_abcd, max_members=2, min_members=1)
            extra = random_constraint(rng, ground_abcd, max_members=2)
            grown = DifferentialConstraint(
                ground_abcd,
                c.lhs | rng.randrange(16),
                c.family.add(rng.randrange(1, 16)),
            )
            cset = ConstraintSet(ground_abcd, [c, extra])
            proof = derive(cset, grown, check=True)
            assert proof.size() <= 2 + len(grown.family)

    def test_fast_path_does_not_misfire(self, ground_abc):
        """Implication without subsumption still uses the full engine."""
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        proof = derive(cset, t, allow_derived=False)
        assert proof.conclusion == t
        check_proof(proof, cset.constraints, allow_derived=False)


class TestDerivationSize:
    def test_size_positive(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        t = DifferentialConstraint.parse(ground_abc, "A -> C")
        assert derivation_size(cs, t) >= 3

    def test_size_grows_with_lattice(self, ground_abcd):
        """A target with a larger lattice decomposition needs more atoms."""
        cs_small = ConstraintSet.of(ground_abcd, "ABC -> D")
        t_small = DifferentialConstraint.parse(ground_abcd, "ABC -> D")
        everything = DifferentialConstraint.parse(ground_abcd, " -> ")
        cs_big = ConstraintSet(ground_abcd, [everything])
        t_big = DifferentialConstraint.parse(ground_abcd, "A -> ")
        assert derivation_size(cs_big, t_big) > derivation_size(
            cs_small, t_small
        )
