"""Unit tests for the zeta/Moebius transforms (equations (4)-(5))."""

import numpy as np
import pytest

from repro.core import transforms as tr


class TestButterflies:
    def test_zeta_numpy_matches_naive(self, rng):
        for n in range(0, 6):
            values = np.array([rng.uniform(-2, 2) for _ in range(1 << n)])
            fast = values.copy()
            tr.superset_zeta_inplace(fast)
            naive = tr.naive_zeta_table(values.tolist())
            assert np.allclose(fast, naive)

    def test_mobius_numpy_matches_naive(self, rng):
        for n in range(0, 6):
            values = np.array([rng.uniform(-2, 2) for _ in range(1 << n)])
            fast = values.copy()
            tr.superset_mobius_inplace(fast)
            naive = tr.naive_density_table(values.tolist())
            assert np.allclose(fast, naive)

    def test_exact_list_path(self, rng):
        values = [rng.randint(-5, 5) for _ in range(16)]
        as_list = list(values)
        tr.superset_mobius_inplace(as_list)
        assert as_list == tr.naive_density_table(values)
        assert all(isinstance(v, int) for v in as_list)

    def test_roundtrip_identity_float(self, rng):
        values = np.array([rng.uniform(-1, 1) for _ in range(32)])
        table = values.copy()
        tr.superset_mobius_inplace(table)
        tr.superset_zeta_inplace(table)
        assert np.allclose(table, values)

    def test_roundtrip_identity_exact(self, rng):
        values = [rng.randint(-9, 9) for _ in range(64)]
        table = list(values)
        tr.superset_zeta_inplace(table)
        tr.superset_mobius_inplace(table)
        assert table == values


class TestWrappers:
    def test_density_table_copies(self):
        values = np.ones(8)
        out = tr.density_table(values)
        assert out is not values
        assert np.all(values == 1)

    def test_function_from_density(self):
        density = [0.0] * 8
        density[0b111] = 2.0
        table = tr.function_table_from_density(density)
        # f(X) = 2 for every X (all X are subsets of ABC)
        assert all(v == 2.0 for v in table)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            tr.superset_zeta_inplace([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            tr.naive_density_table([1.0] * 5)

    def test_table_size_for(self):
        assert tr.table_size_for(0) == 1
        assert tr.table_size_for(4) == 16


class TestSubsetTransforms:
    """The downward (belief-side) transforms added for repro.measures."""

    def test_subset_zeta_definition(self, rng):
        import repro.core.subsets as sb

        values = [rng.randint(-5, 5) for _ in range(16)]
        table = list(values)
        tr.subset_zeta_inplace(table)
        for x in range(16):
            assert table[x] == sum(values[u] for u in sb.iter_subsets(x))

    def test_subset_roundtrip_exact(self, rng):
        values = [rng.randint(-9, 9) for _ in range(32)]
        table = list(values)
        tr.subset_zeta_inplace(table)
        tr.subset_mobius_inplace(table)
        assert table == values

    def test_subset_numpy_matches_list(self, rng):
        values = [rng.uniform(-1, 1) for _ in range(16)]
        as_list = list(values)
        as_array = np.array(values)
        tr.subset_zeta_inplace(as_list)
        tr.subset_zeta_inplace(as_array)
        assert np.allclose(as_list, as_array)
        tr.subset_mobius_inplace(as_list)
        tr.subset_mobius_inplace(as_array)
        assert np.allclose(as_list, as_array)

    def test_mirror_of_superset_transform(self, rng):
        """subset zeta == superset zeta under complement conjugation."""
        n = 4
        universe = (1 << n) - 1
        values = [rng.randint(-5, 5) for _ in range(1 << n)]
        forward = list(values)
        tr.subset_zeta_inplace(forward)
        mirrored = [values[universe ^ x] for x in range(1 << n)]
        tr.superset_zeta_inplace(mirrored)
        for x in range(1 << n):
            assert forward[x] == mirrored[universe ^ x]


class TestRemark23:
    """Equations (4) and (5) are mutually inverse characterizations."""

    def test_equation_4_and_5_inverse(self, rng):
        n = 4
        f = [rng.uniform(-3, 3) for _ in range(1 << n)]
        d = tr.naive_density_table(f)
        f_back = tr.naive_zeta_table(d)
        assert np.allclose(f, f_back)

    def test_uniqueness_of_density(self, rng):
        # two different densities cannot produce the same function
        n = 3
        d1 = [rng.randint(-3, 3) for _ in range(1 << n)]
        d2 = list(d1)
        d2[5] += 1
        f1 = tr.function_table_from_density(d1)
        f2 = tr.function_table_from_density(d2)
        assert f1 != f2
