"""Unit tests for lattice decompositions (Def 2.6, Props 2.8-2.9)."""

import pytest

from repro.core import (
    GroundSet,
    SetFamily,
    in_lattice,
    iter_lattice,
    iter_lattice_by_witnesses,
    lattice,
    lattice_bitset,
    lattice_size,
    proposition_2_8_split,
)
from repro.instances import random_family, random_mask


class TestPaperExamples:
    def test_example_27_first(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        got = set(lattice(ground_abcd.parse("A"), fam, ground_abcd))
        want = {ground_abcd.parse(x) for x in ("A", "AC", "AD")}
        assert got == want

    def test_example_27_overlap(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "BC", "BD")
        got = set(lattice(ground_abcd.parse("A"), fam, ground_abcd))
        want = {ground_abcd.parse(x) for x in ("A", "AB", "AC", "AD", "ACD")}
        assert got == want

    def test_example_32_lattices(self, ground_abc):
        s = ground_abc
        assert set(lattice(s.parse("A"), SetFamily.of(s, "B"), s)) == {
            s.parse("A"),
            s.parse("AC"),
        }
        assert set(lattice(s.parse("B"), SetFamily.of(s, "C"), s)) == {
            s.parse("B"),
            s.parse("AB"),
        }
        assert set(lattice(s.parse("C"), SetFamily.of(s, "A"), s)) == {
            s.parse("C"),
            s.parse("BC"),
        }

    def test_remark_36_lattice(self, ground_a):
        # L((/), (/)) over S={A} is {(/), A}
        fam = SetFamily(ground_a)
        assert set(lattice(0, fam, ground_a)) == {0, 1}


class TestClosedFormVsWitnessForm:
    def test_forms_agree_randomly(self, ground_abcd, rng):
        for _ in range(80):
            fam = random_family(rng, ground_abcd, max_members=3)
            lhs = random_mask(rng, ground_abcd)
            closed = set(iter_lattice(lhs, fam, ground_abcd))
            via_w = set(iter_lattice_by_witnesses(lhs, fam, ground_abcd))
            assert closed == via_w

    def test_forms_agree_with_empty_members(self, ground_abcd, rng):
        for _ in range(40):
            fam = random_family(
                rng, ground_abcd, max_members=3, allow_empty_member=True
            )
            lhs = random_mask(rng, ground_abcd)
            closed = set(iter_lattice(lhs, fam, ground_abcd))
            via_w = set(iter_lattice_by_witnesses(lhs, fam, ground_abcd))
            assert closed == via_w


class TestMembership:
    def test_in_lattice(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        a = ground_abcd.parse("A")
        assert in_lattice(a, fam, ground_abcd.parse("AC"))
        assert not in_lattice(a, fam, ground_abcd.parse("AB"))  # contains B
        assert not in_lattice(a, fam, ground_abcd.parse("C"))  # misses A

    def test_membership_matches_enumeration(self, ground_abcd, rng):
        for _ in range(30):
            fam = random_family(rng, ground_abcd, max_members=3)
            lhs = random_mask(rng, ground_abcd)
            members = set(iter_lattice(lhs, fam, ground_abcd))
            for u in ground_abcd.all_masks():
                assert in_lattice(lhs, fam, u) == (u in members)

    def test_bitset(self, ground_abcd, rng):
        fam = random_family(rng, ground_abcd, max_members=2)
        lhs = random_mask(rng, ground_abcd)
        table = lattice_bitset(lhs, fam, ground_abcd)
        for u in ground_abcd.all_masks():
            assert bool(table[u]) == in_lattice(lhs, fam, u)

    def test_size(self, ground_abcd, rng):
        fam = random_family(rng, ground_abcd, max_members=2)
        lhs = random_mask(rng, ground_abcd)
        assert lattice_size(lhs, fam, ground_abcd) == len(
            lattice(lhs, fam, ground_abcd)
        )


class TestStructure:
    def test_trivial_constraint_empty_lattice(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "A")
        assert lattice(ground_abcd.parse("AB"), fam, ground_abcd) == []

    def test_empty_family_full_interval(self, ground_abcd):
        fam = SetFamily(ground_abcd)
        lhs = ground_abcd.parse("AB")
        got = set(lattice(lhs, fam, ground_abcd))
        want = set(ground_abcd.iter_supersets(lhs))
        assert got == want

    def test_proposition_2_8(self, ground_abcd, rng):
        """L(X, Y) = L(X, Y + {Z}) union L(X + Z, Y)."""
        for _ in range(80):
            fam = random_family(rng, ground_abcd, max_members=3)
            lhs = random_mask(rng, ground_abcd)
            z = random_mask(rng, ground_abcd)
            left, with_z, lifted = proposition_2_8_split(
                lhs, fam, z, ground_abcd
            )
            assert set(left) == set(with_z) | set(lifted)
            # and both parts are subsets of the whole (soundness of
            # Addition and Augmentation)
            assert set(with_z) <= set(left)
            assert set(lifted) <= set(left)
