"""Unit tests for the rule schemas and their soundness (Figures 1-2).

Soundness here is checked *semantically*: for every rule, on random
instances, any function satisfying the premises satisfies the conclusion
(equivalently via Theorem 3.5: the conclusion's lattice decomposition is
covered by the premises').
"""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
)
from repro.core import rules as R
from repro.core.implication import implies_lattice
from repro.errors import InvalidProofError
from repro.instances import random_constraint, random_family, random_mask


def _dc(ground, lhs, family):
    return DifferentialConstraint(ground, lhs, family)


class TestValidators:
    def test_axiom_checks_hypotheses(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        R.validate_step(c, R.AXIOM, [], (), {c})
        R.validate_step(c, R.AXIOM, [], (), None)  # shape-only mode
        with pytest.raises(InvalidProofError):
            R.validate_step(c, R.AXIOM, [], (), set())

    def test_triviality(self, ground_abc):
        R.validate_step(
            DifferentialConstraint.parse(ground_abc, "AB -> B"),
            R.TRIVIALITY, [], (), None,
        )
        with pytest.raises(InvalidProofError):
            R.validate_step(
                DifferentialConstraint.parse(ground_abc, "A -> B"),
                R.TRIVIALITY, [], (), None,
            )

    def test_augmentation(self, ground_abcd):
        p = DifferentialConstraint.parse(ground_abcd, "A -> B")
        z = ground_abcd.parse("CD")
        good = DifferentialConstraint.parse(ground_abcd, "ACD -> B")
        R.validate_step(good, R.AUGMENTATION, [p], (z,), None)
        with pytest.raises(InvalidProofError):
            R.validate_step(p, R.AUGMENTATION, [p], (z,), None)

    def test_addition(self, ground_abcd):
        p = DifferentialConstraint.parse(ground_abcd, "A -> B")
        z = ground_abcd.parse("CD")
        good = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        R.validate_step(good, R.ADDITION, [p], (z,), None)

    def test_elimination(self, ground_abcd):
        p1 = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        p2 = DifferentialConstraint.parse(ground_abcd, "ACD -> B")
        concl = DifferentialConstraint.parse(ground_abcd, "A -> B")
        z = ground_abcd.parse("CD")
        R.validate_step(concl, R.ELIMINATION, [p1, p2], (z,), None)
        with pytest.raises(InvalidProofError):
            R.validate_step(concl, R.ELIMINATION, [p2, p1], (z,), None)

    def test_wrong_premise_count(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        with pytest.raises(InvalidProofError):
            R.validate_step(c, R.ELIMINATION, [c], (0,), None)

    def test_unknown_rule(self, ground_abc):
        c = DifferentialConstraint.parse(ground_abc, "A -> B")
        with pytest.raises(InvalidProofError):
            R.validate_step(c, "modus-ponens", [], (), None)

    def test_absorption_requires_growth_within_lhs(self, ground_abcd):
        p = DifferentialConstraint.parse(ground_abcd, "AB -> C")
        c_mask = ground_abcd.parse("C")
        good = DifferentialConstraint.parse(ground_abcd, "AB -> AC")
        R.validate_step(
            good, R.ABSORPTION, [p], (c_mask, ground_abcd.parse("AC")), None
        )
        with pytest.raises(InvalidProofError):
            # growing by D (not in the LHS) is not absorption
            R.validate_step(
                DifferentialConstraint.parse(ground_abcd, "AB -> CD"),
                R.ABSORPTION, [p], (c_mask, ground_abcd.parse("CD")), None,
            )


class TestPrimitiveRuleSoundness:
    """Every Figure-1 rule instance is semantically sound (Prop 4.2)."""

    def test_augmentation_sound(self, ground_abcd, rng):
        for _ in range(60):
            c = random_constraint(rng, ground_abcd, max_members=3)
            z = random_mask(rng, ground_abcd)
            concl = _dc(ground_abcd, c.lhs | z, c.family)
            assert implies_lattice(ConstraintSet(ground_abcd, [c]), concl)

    def test_addition_sound(self, ground_abcd, rng):
        for _ in range(60):
            c = random_constraint(rng, ground_abcd, max_members=3)
            z = random_mask(rng, ground_abcd)
            concl = _dc(ground_abcd, c.lhs, c.family.add(z))
            assert implies_lattice(ConstraintSet(ground_abcd, [c]), concl)

    def test_elimination_sound(self, ground_abcd, rng):
        for _ in range(60):
            fam = random_family(rng, ground_abcd, max_members=2)
            lhs = random_mask(rng, ground_abcd)
            z = random_mask(rng, ground_abcd)
            p1 = _dc(ground_abcd, lhs, fam.add(z))
            p2 = _dc(ground_abcd, lhs | z, fam)
            concl = _dc(ground_abcd, lhs, fam)
            assert implies_lattice(ConstraintSet(ground_abcd, [p1, p2]), concl)

    def test_triviality_sound(self, ground_abcd, rng):
        for _ in range(40):
            c = random_constraint(rng, ground_abcd, max_members=3)
            if c.is_trivial:
                assert implies_lattice(ConstraintSet(ground_abcd), c)


class TestDerivedRuleSoundness:
    """Every Figure-2 rule instance is semantically sound."""

    def test_projection_sound(self, ground_abcd, rng):
        for _ in range(60):
            fam = random_family(rng, ground_abcd, max_members=2, min_members=1)
            lhs = random_mask(rng, ground_abcd)
            old = rng.choice(fam.members)
            new = old & random_mask(rng, ground_abcd, 0.7)
            p = _dc(ground_abcd, lhs, fam)
            concl = _dc(ground_abcd, lhs, fam.replace(old, new))
            assert implies_lattice(ConstraintSet(ground_abcd, [p]), concl)

    def test_separation_sound(self, ground_abcd, rng):
        for _ in range(60):
            fam = random_family(rng, ground_abcd, max_members=2, min_members=1)
            lhs = random_mask(rng, ground_abcd)
            old = rng.choice(fam.members)
            part1 = old & random_mask(rng, ground_abcd, 0.6)
            part2 = old & ~part1
            if part1 == 0 or part2 == 0:
                continue
            p = _dc(ground_abcd, lhs, fam)
            concl = _dc(ground_abcd, lhs, fam.remove(old).add(part1).add(part2))
            assert implies_lattice(ConstraintSet(ground_abcd, [p]), concl)

    def test_union_sound(self, ground_abcd, rng):
        for _ in range(60):
            base = random_family(rng, ground_abcd, max_members=2)
            lhs = random_mask(rng, ground_abcd)
            m1 = random_mask(rng, ground_abcd) or 1
            m2 = random_mask(rng, ground_abcd) or 2
            p1 = _dc(ground_abcd, lhs, base.add(m1))
            p2 = _dc(ground_abcd, lhs, base.add(m2))
            concl = _dc(ground_abcd, lhs, base.add(m1 | m2))
            assert implies_lattice(ConstraintSet(ground_abcd, [p1, p2]), concl)

    def test_transitivity_sound(self, ground_abcd, rng):
        for _ in range(60):
            base = random_family(rng, ground_abcd, max_members=2)
            x = random_mask(rng, ground_abcd)
            y = random_mask(rng, ground_abcd)
            z = random_mask(rng, ground_abcd)
            p1 = _dc(ground_abcd, x, base.add(y))
            p2 = _dc(ground_abcd, y, base.add(z))
            concl = _dc(ground_abcd, x, base.add(z))
            assert implies_lattice(ConstraintSet(ground_abcd, [p1, p2]), concl)

    def test_chain_sound(self, ground_abcd, rng):
        for _ in range(60):
            base = random_family(rng, ground_abcd, max_members=2)
            x = random_mask(rng, ground_abcd)
            y = random_mask(rng, ground_abcd)
            z = random_mask(rng, ground_abcd)
            p1 = _dc(ground_abcd, x, base.add(y))
            p2 = _dc(ground_abcd, x | y, base.add(z))
            concl = _dc(ground_abcd, x, base.add(y | z))
            assert implies_lattice(ConstraintSet(ground_abcd, [p1, p2]), concl)

    def test_absorption_sound(self, ground_abcd, rng):
        for _ in range(60):
            fam = random_family(rng, ground_abcd, max_members=2, min_members=1)
            lhs = random_mask(rng, ground_abcd)
            old = rng.choice(fam.members)
            new = old | (lhs & random_mask(rng, ground_abcd, 0.7))
            p = _dc(ground_abcd, lhs, fam)
            concl = _dc(ground_abcd, lhs, fam.replace(old, new))
            assert implies_lattice(ConstraintSet(ground_abcd, [p]), concl)


class TestRuleInventory:
    def test_rule_partition(self):
        assert R.PRIMITIVE_RULES & R.DERIVED_RULES == frozenset()
        assert R.AXIOM in R.ALL_RULES
        assert len(R.PRIMITIVE_RULES) == 4  # Figure 1
        assert len(R.DERIVED_RULES) == 6  # Figure 2 + absorption lemma
