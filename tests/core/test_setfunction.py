"""Unit tests for dense and sparse set functions."""

import pytest

from repro.core import GroundSet, SetFunction, SparseDensityFunction
from repro.errors import GroundSetMismatchError


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABC")


class TestConstruction:
    def test_zeros_and_constant(self, s):
        z = SetFunction.zeros(s)
        assert all(z.value(m) == 0 for m in s.all_masks())
        c = SetFunction.constant(s, 2.5)
        assert all(c.value(m) == 2.5 for m in s.all_masks())

    def test_from_dict_with_default(self, s):
        f = SetFunction.from_dict(s, {"": 2, "C": 2}, default=1, exact=True)
        assert f("") == 2
        assert f("C") == 2
        assert f("A") == 1
        assert f("ABC") == 1

    def test_from_dict_mask_keys(self, s):
        f = SetFunction.from_dict(s, {0b101: 7})
        assert f.value(0b101) == 7.0

    def test_from_callable(self, s):
        f = SetFunction.from_callable(s, lambda m: m.bit_count(), exact=True)
        assert f("AB") == 2

    def test_wrong_length_rejected(self, s):
        with pytest.raises(ValueError):
            SetFunction(s, [1, 2, 3])

    def test_call_with_labels(self, s):
        f = SetFunction.from_callable(s, lambda m: m, exact=True)
        assert f(["A", "C"]) == 0b101


class TestDensity:
    def test_example_32_density(self, s):
        # f((/)) = f(C) = 2, f = 1 elsewhere  =>  d(C) = d(ABC) = 1, 0 else
        f = SetFunction.from_dict(s, {"": 2, "C": 2}, default=1, exact=True)
        d = f.density()
        assert d("C") == 1
        assert d("ABC") == 1
        total_abs = sum(abs(d.value(m)) for m in s.all_masks())
        assert total_abs == 2

    def test_density_cached(self, s):
        f = SetFunction.constant(s, 1.0)
        assert f.density() is f.density()

    def test_density_items_nonzero_only(self, s):
        f = SetFunction.from_density(s, {"AB": 3}, exact=True)
        assert list(f.density_items()) == [(s.parse("AB"), 3)]

    def test_from_density_roundtrip(self, s):
        density = {0b001: 2, 0b110: -1, 0b111: 4}
        f = SetFunction.from_density(s, density, exact=True)
        d = f.density()
        for mask in s.all_masks():
            assert d.value(mask) == density.get(mask, 0)

    def test_is_nonnegative_density(self, s):
        good = SetFunction.from_density(s, {"A": 1, "BC": 2}, exact=True)
        bad = SetFunction.from_density(s, {"A": 1, "BC": -2}, exact=True)
        assert good.is_nonnegative_density()
        assert not bad.is_nonnegative_density()


class TestArithmetic:
    def test_add_sub_scale(self, s):
        f = SetFunction.from_callable(s, lambda m: m, exact=True)
        g = SetFunction.constant(s, 1, exact=True)
        assert (f + g).value(0b11) == 4
        assert (f - g).value(0b11) == 2
        assert (2 * f).value(0b11) == 6
        assert (-f).value(0b11) == -3

    def test_mixed_ground_sets_rejected(self, s):
        other = SetFunction.zeros(GroundSet("AB"))
        with pytest.raises(GroundSetMismatchError):
            SetFunction.zeros(s) + other

    def test_allclose(self, s):
        f = SetFunction.constant(s, 1.0)
        g = SetFunction.constant(s, 1.0 + 1e-12)
        assert f.allclose(g)
        assert not f.allclose(SetFunction.constant(s, 1.1))


class TestSparseDensityFunction:
    def test_value_is_superset_sum(self, s):
        f = SparseDensityFunction(s, {s.parse("AB"): 2, s.parse("ABC"): 1})
        assert f("") == 3
        assert f("A") == 3
        assert f("AB") == 3
        assert f("ABC") == 1
        assert f("C") == 1

    def test_zero_entries_dropped(self, s):
        f = SparseDensityFunction(s, {0b1: 0, 0b10: 3})
        assert f.support_size() == 1

    def test_matches_dense(self, s):
        density = {0b011: 2, 0b101: 5}
        sparse = SparseDensityFunction(s, density)
        dense = SetFunction.from_density(s, dict(density), exact=True)
        for mask in s.all_masks():
            assert sparse.value(mask) == dense.value(mask)
            assert sparse.density_value(mask) == dense.density_value(mask)

    def test_to_dense(self, s):
        sparse = SparseDensityFunction(s, {0b111: 4})
        dense = sparse.to_dense()
        assert dense("") == 4
        assert dense("AB") == 4

    def test_nonnegative_density(self, s):
        assert SparseDensityFunction(s, {0b1: 1}).is_nonnegative_density()
        assert not SparseDensityFunction(s, {0b1: -1}).is_nonnegative_density()
