"""Tests for the networkx graph views."""

import networkx as nx
import pytest

from repro.core import ConstraintSet, DifferentialConstraint, GroundSet, SetFamily, derive
from repro.core.graphs import implication_graph, lattice_hasse_graph, proof_graph
from repro.instances import random_constraint, random_family, random_mask


class TestLatticeHasse:
    def test_example_27_shape(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        g = lattice_hasse_graph(ground_abcd.parse("A"), fam, ground_abcd)
        labels = {data["label"] for _, data in g.nodes(data=True)}
        assert labels == {"A", "AC", "AD"}
        # A is covered by AC and AD; no edge between AC and AD
        a = ground_abcd.parse("A")
        assert set(g.successors(a)) == {
            ground_abcd.parse("AC"),
            ground_abcd.parse("AD"),
        }
        assert g.number_of_edges() == 2

    def test_hasse_is_transitive_reduction(self, ground_abcd, rng):
        import repro.core.subsets as sb

        for _ in range(15):
            fam = random_family(rng, ground_abcd, max_members=2)
            lhs = random_mask(rng, ground_abcd)
            g = lattice_hasse_graph(lhs, fam, ground_abcd)
            assert nx.is_directed_acyclic_graph(g)
            # reachability == subset order within the decomposition
            closure = nx.transitive_closure_dag(g)
            for u in g.nodes:
                for v in g.nodes:
                    if u != v and sb.is_proper_subset(u, v):
                        assert closure.has_edge(u, v)

    def test_empty_lattice_gives_empty_graph(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "A")  # trivial for LHS AB
        g = lattice_hasse_graph(ground_abcd.parse("AB"), fam, ground_abcd)
        assert g.number_of_nodes() == 0


class TestProofGraph:
    def test_example_34_proof_graph(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        proof = derive(cset, DifferentialConstraint.parse(ground_abc, "A -> C"))
        g = proof_graph(proof)
        assert g.number_of_nodes() == proof.size()
        assert nx.is_directed_acyclic_graph(g)
        # the final conclusion is the unique sink
        sinks = [n for n in g.nodes if g.out_degree(n) == 0]
        assert len(sinks) == 1
        assert g.nodes[sinks[0]]["conclusion"] == "A -> {C}"

    def test_axioms_are_sources(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        proof = derive(cset, DifferentialConstraint.parse(ground_abc, "A -> C"))
        g = proof_graph(proof)
        for n, data in g.nodes(data=True):
            if data["rule"] in ("axiom", "triviality"):
                assert g.in_degree(n) == 0

    def test_node_numbers_match_format(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        proof = derive(cset, DifferentialConstraint.parse(ground_abc, "A -> C"))
        g = proof_graph(proof)
        text = proof.format()
        for n, data in g.nodes(data=True):
            assert f"({n}) {data['conclusion']}" in text


class TestImplicationGraph:
    def test_equivalent_constraints_form_scc(self, ground_abcd):
        c1 = DifferentialConstraint.parse(ground_abcd, "A -> B")
        # same lattice decomposition: adding a superset member changes nothing
        c2 = DifferentialConstraint.parse(ground_abcd, "A -> B, BC")
        c3 = DifferentialConstraint.parse(ground_abcd, "A -> C")
        g = implication_graph([c1, c2, c3])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        sccs = list(nx.strongly_connected_components(g))
        assert {0, 1} in sccs

    def test_stronger_implies_weaker(self, ground_abcd):
        strong = DifferentialConstraint.parse(ground_abcd, "A -> BC")
        weak = DifferentialConstraint.parse(ground_abcd, "A -> BC, D")
        g = implication_graph([strong, weak])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edges_match_implication(self, ground_abcd, rng):
        constraints = [
            random_constraint(rng, ground_abcd, max_members=2) for _ in range(6)
        ]
        g = implication_graph(constraints)
        from repro.core.implication import implies_lattice

        for i, c in enumerate(constraints):
            for j, other in enumerate(constraints):
                if i != j:
                    assert g.has_edge(i, j) == implies_lattice([c], other)
