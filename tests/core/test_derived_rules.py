"""Tests for the Figure-2 expansions (experiment E2's correctness core).

Each derived rule, applied to random instances, must expand into a proof
that (a) uses only Figure-1 primitives, (b) has the same conclusion, and
(c) passes the independent checker against the original premises.
"""

import pytest

from repro.core import DifferentialConstraint, GroundSet, SetFamily, check_proof
from repro.core import derived_rules as D
from repro.core import proofs as P
from repro.instances import random_family, random_mask


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABCDE")


def _expansion_ok(expanded, conclusion, hypotheses):
    assert expanded.conclusion == conclusion
    assert expanded.uses_only_primitives()
    check_proof(expanded, hypotheses, allow_derived=False)


class TestProjectionExpansion:
    def test_random(self, s, rng):
        for _ in range(80):
            fam = random_family(rng, s, max_members=3, min_members=1)
            lhs = random_mask(rng, s)
            old = rng.choice(fam.members)
            new = old & random_mask(rng, s, 0.7)
            premise = DifferentialConstraint(s, lhs, fam)
            expanded = D.expand_projection(P.axiom(premise), old, new)
            concl = DifferentialConstraint(s, lhs, fam.replace(old, new))
            _expansion_ok(expanded, concl, [premise])

    def test_identity_projection_returns_premise(self, s):
        premise = DifferentialConstraint.parse(s, "A -> BC")
        p = P.axiom(premise)
        assert D.expand_projection(p, s.parse("BC"), s.parse("BC")) is p

    def test_projection_to_empty_member(self, s):
        premise = DifferentialConstraint.parse(s, "A -> BC")
        expanded = D.expand_projection(P.axiom(premise), s.parse("BC"), 0)
        assert expanded.conclusion == DifferentialConstraint(
            s, s.parse("A"), SetFamily(s, [0])
        )
        check_proof(expanded, [premise], allow_derived=False)


class TestSeparationExpansion:
    def test_random(self, s, rng):
        for _ in range(80):
            fam = random_family(rng, s, max_members=3, min_members=1)
            lhs = random_mask(rng, s)
            old = rng.choice(fam.members)
            part1 = old & random_mask(rng, s, 0.5)
            part2 = old & ~part1
            premise = DifferentialConstraint(s, lhs, fam)
            expanded = D.expand_separation(P.axiom(premise), old, part1, part2)
            concl = DifferentialConstraint(
                s, lhs, fam.remove(old).add(part1).add(part2)
            )
            _expansion_ok(expanded, concl, [premise])


class TestAbsorptionExpansion:
    def test_random(self, s, rng):
        for _ in range(80):
            fam = random_family(rng, s, max_members=3, min_members=1)
            lhs = random_mask(rng, s)
            old = rng.choice(fam.members)
            new = old | (lhs & random_mask(rng, s, 0.7))
            premise = DifferentialConstraint(s, lhs, fam)
            expanded = D.expand_absorption(P.axiom(premise), old, new)
            concl = DifferentialConstraint(s, lhs, fam.replace(old, new))
            _expansion_ok(expanded, concl, [premise])


class TestUnionExpansion:
    def test_random(self, s, rng):
        for _ in range(80):
            base = random_family(rng, s, max_members=2)
            lhs = random_mask(rng, s)
            m1 = random_mask(rng, s) or 0b1
            m2 = random_mask(rng, s) or 0b10
            prem1 = DifferentialConstraint(s, lhs, base.add(m1))
            prem2 = DifferentialConstraint(s, lhs, base.add(m2))
            expanded = D.expand_union(
                P.axiom(prem1), P.axiom(prem2), m1, m2, base
            )
            concl = DifferentialConstraint(s, lhs, base.add(m1 | m2))
            _expansion_ok(expanded, concl, [prem1, prem2])

    def test_degenerate_containments(self, s):
        base = SetFamily(s)
        lhs = s.parse("A")
        m1, m2 = s.parse("BC"), s.parse("B")  # m2 inside m1
        prem1 = DifferentialConstraint(s, lhs, base.add(m1))
        prem2 = DifferentialConstraint(s, lhs, base.add(m2))
        expanded = D.expand_union(P.axiom(prem1), P.axiom(prem2), m1, m2, base)
        assert expanded.conclusion == prem1  # m1 | m2 == m1


class TestTransitivityExpansion:
    def test_random(self, s, rng):
        for _ in range(80):
            base = random_family(rng, s, max_members=2)
            x = random_mask(rng, s)
            y = random_mask(rng, s)
            z = random_mask(rng, s)
            prem1 = DifferentialConstraint(s, x, base.add(y))
            prem2 = DifferentialConstraint(s, y, base.add(z))
            expanded = D.expand_transitivity(
                P.axiom(prem1), P.axiom(prem2), y, z, base
            )
            concl = DifferentialConstraint(s, x, base.add(z))
            _expansion_ok(expanded, concl, [prem1, prem2])


class TestChainExpansion:
    def test_random(self, s, rng):
        for _ in range(80):
            base = random_family(rng, s, max_members=2)
            x = random_mask(rng, s)
            y = random_mask(rng, s)
            z = random_mask(rng, s)
            prem1 = DifferentialConstraint(s, x, base.add(y))
            prem2 = DifferentialConstraint(s, x | y, base.add(z))
            expanded = D.expand_chain(
                P.axiom(prem1), P.axiom(prem2), y, z, base
            )
            concl = DifferentialConstraint(s, x, base.add(y | z))
            _expansion_ok(expanded, concl, [prem1, prem2])


class TestWholeProofExpansion:
    def test_expand_proof_recursive(self, s):
        """A proof stacking several macro rules expands in one pass."""
        given = DifferentialConstraint.parse(s, "A -> BC, DE")
        p = P.axiom(given)
        p = P.projection(p, s.parse("DE"), s.parse("D"))
        p = P.separation(p, s.parse("BC"), s.parse("B"), s.parse("C"))
        p = P.augmentation(p, s.parse("E"))
        expanded = D.expand_proof(p)
        assert expanded.conclusion == p.conclusion
        assert expanded.uses_only_primitives()
        check_proof(expanded, [given], allow_derived=False)

    def test_expand_pure_primitive_proof_is_stable(self, s):
        given = DifferentialConstraint.parse(s, "A -> B")
        p = P.addition(P.axiom(given), s.parse("C"))
        assert D.expand_proof(p) is p

    def test_expansion_sizes_are_modest(self, s, rng):
        """Each single macro step expands to O(1) primitive steps."""
        for _ in range(30):
            fam = random_family(rng, s, max_members=2, min_members=1)
            lhs = random_mask(rng, s)
            old = rng.choice(fam.members)
            new = old & random_mask(rng, s, 0.5)
            premise = DifferentialConstraint(s, lhs, fam)
            expanded = D.expand_projection(P.axiom(premise), old, new)
            assert expanded.size() <= 4
