"""Unit tests for witness sets (Definition 2.5)."""

import pytest

from repro.core import (
    GroundSet,
    SetFamily,
    count_witnesses,
    is_witness,
    iter_witnesses,
    minimal_witnesses,
    witnesses,
)
from repro.core import subsets as sb
from repro.instances import random_family


class TestPaperExamples:
    def test_example_27_first(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        got = set(witnesses(fam))
        want = {ground_abcd.parse(x) for x in ("BC", "BD", "BCD")}
        assert got == want

    def test_example_27_second(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "BC", "BD")
        got = set(witnesses(fam))
        want = {ground_abcd.parse(x) for x in ("B", "BC", "BD", "CD", "BCD")}
        assert got == want


class TestSpecialCases:
    def test_empty_family_has_empty_witness(self, ground_abcd):
        fam = SetFamily(ground_abcd)
        assert witnesses(fam) == [0]

    def test_family_with_empty_member_has_no_witness(self, ground_abcd):
        fam = SetFamily(ground_abcd, [0])
        assert witnesses(fam) == []
        assert minimal_witnesses(fam) == []

    def test_single_singleton(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B")
        assert witnesses(fam) == [ground_abcd.parse("B")]

    def test_all_singletons_unique_witness(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "A", "C", "D")
        assert witnesses(fam) == [ground_abcd.parse("ACD")]

    def test_witnesses_confined_to_union(self, ground_abcd, rng):
        for _ in range(30):
            fam = random_family(rng, ground_abcd, max_members=3)
            union = fam.union_support()
            for w in iter_witnesses(fam):
                assert sb.is_subset(w, union)


class TestIsWitness:
    def test_definition(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        assert is_witness(fam, ground_abcd.parse("BC"))
        assert not is_witness(fam, ground_abcd.parse("B"))  # misses CD
        assert not is_witness(fam, ground_abcd.parse("ABC"))  # outside union

    def test_matches_enumeration(self, ground_abcd, rng):
        for _ in range(20):
            fam = random_family(rng, ground_abcd, max_members=3)
            enumerated = set(iter_witnesses(fam))
            for mask in ground_abcd.all_masks():
                assert (mask in enumerated) == is_witness(fam, mask)


class TestMinimalWitnesses:
    def test_minimal_of_example_27(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        got = set(minimal_witnesses(fam))
        assert got == {ground_abcd.parse("BC"), ground_abcd.parse("BD")}

    def test_antichain(self, ground_abcd, rng):
        for _ in range(40):
            fam = random_family(rng, ground_abcd, max_members=4)
            mins = minimal_witnesses(fam)
            for a in mins:
                for b in mins:
                    if a != b:
                        assert not sb.is_subset(a, b)

    def test_minimal_generate_all(self, ground_abcd, rng):
        """Every witness contains a minimal one; every superset of a
        minimal one (within the union) is a witness."""
        for _ in range(40):
            fam = random_family(rng, ground_abcd, max_members=4)
            mins = minimal_witnesses(fam)
            union = fam.union_support()
            all_ws = set(iter_witnesses(fam))
            regenerated = set()
            for m in mins:
                regenerated.update(sb.iter_supersets(m, union))
            assert regenerated == all_ws

    def test_count(self, ground_abcd, rng):
        for _ in range(20):
            fam = random_family(rng, ground_abcd, max_members=3)
            assert count_witnesses(fam) == len(witnesses(fam))
