"""Unit tests for set families (constraint right-hand sides)."""

import pytest

from repro.core import GroundSet, SetFamily
from repro.core.lattice import lattice


@pytest.fixture
def s() -> GroundSet:
    return GroundSet("ABCD")


class TestConstruction:
    def test_of_shorthand(self, s):
        fam = SetFamily.of(s, "B", "CD")
        assert fam.members == (s.parse("B"), s.parse("CD"))

    def test_deduplication(self, s):
        fam = SetFamily(s, [0b10, 0b10, 0b1100])
        assert len(fam) == 2

    def test_sorted_canonical_order(self, s):
        a = SetFamily(s, [0b1100, 0b10])
        b = SetFamily(s, [0b10, 0b1100])
        assert a == b
        assert hash(a) == hash(b)
        assert a.members == (0b10, 0b1100)

    def test_empty_family(self, s):
        fam = SetFamily(s)
        assert len(fam) == 0
        assert fam.union_support() == 0

    def test_singletons_of(self, s):
        fam = SetFamily.singletons_of(s, s.parse("ACD"))
        assert fam.members == (0b0001, 0b0100, 0b1000)
        assert fam.all_singletons()

    def test_mask_validation(self, s):
        with pytest.raises(Exception):
            SetFamily(s, [0b10000])


class TestOperations:
    def test_union_support(self, s):
        fam = SetFamily.of(s, "B", "CD")
        assert fam.union_support() == s.parse("BCD")

    def test_add_is_set_union(self, s):
        fam = SetFamily.of(s, "B")
        assert fam.add(s.parse("B")) == fam
        assert len(fam.add(s.parse("CD"))) == 2

    def test_remove(self, s):
        fam = SetFamily.of(s, "B", "CD")
        assert fam.remove(s.parse("B")) == SetFamily.of(s, "CD")
        with pytest.raises(KeyError):
            fam.remove(s.parse("A"))

    def test_replace(self, s):
        fam = SetFamily.of(s, "B", "CD")
        out = fam.replace(s.parse("CD"), s.parse("C"))
        assert out == SetFamily.of(s, "B", "C")

    def test_replace_merging(self, s):
        fam = SetFamily.of(s, "B", "BC")
        out = fam.replace(s.parse("BC"), s.parse("B"))
        assert out == SetFamily.of(s, "B")

    def test_union(self, s):
        a = SetFamily.of(s, "B")
        b = SetFamily.of(s, "CD", "B")
        assert a.union(b) == SetFamily.of(s, "B", "CD")

    def test_contains_subset_of(self, s):
        fam = SetFamily.of(s, "B", "CD")
        assert fam.contains_subset_of(s.parse("AB"))
        assert fam.contains_subset_of(s.parse("BCD"))
        assert not fam.contains_subset_of(s.parse("AC"))
        assert not fam.contains_subset_of(s.parse("AD"))

    def test_contains_subset_of_with_empty_member(self, s):
        fam = SetFamily(s, [0])
        assert fam.contains_subset_of(0)
        assert fam.contains_subset_of(s.parse("A"))


class TestSemantics:
    def test_is_trivial_for(self, s):
        fam = SetFamily.of(s, "B", "CD")
        assert fam.is_trivial_for(s.parse("AB"))
        assert not fam.is_trivial_for(s.parse("AC"))

    def test_empty_member_trivial_everywhere(self, s):
        fam = SetFamily(s, [0])
        assert fam.is_trivial_for(0)

    def test_empty_family_never_trivial(self, s):
        fam = SetFamily(s)
        assert not fam.is_trivial_for(s.universe_mask)

    def test_minimal_members_antichain(self, s):
        fam = SetFamily.of(s, "B", "BC", "CD")
        assert fam.minimal_members() == SetFamily.of(s, "B", "CD")

    def test_minimal_members_preserve_lattice(self, s, rng=None):
        import random

        rng = random.Random(17)
        for _ in range(50):
            members = [rng.randrange(1, 16) for _ in range(rng.randint(0, 4))]
            fam = SetFamily(s, members)
            lhs = rng.randrange(16)
            assert lattice(lhs, fam, s) == lattice(lhs, fam.minimal_members(), s)

    def test_all_singletons(self, s):
        assert SetFamily.of(s, "A", "C").all_singletons()
        assert not SetFamily.of(s, "A", "CD").all_singletons()
        assert SetFamily(s).all_singletons()
