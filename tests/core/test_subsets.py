"""Unit tests for the bitmask algebra."""

import pytest

from repro.core import subsets as sb


class TestPopcountAndPredicates:
    def test_popcount(self):
        assert sb.popcount(0) == 0
        assert sb.popcount(0b1011) == 3
        assert sb.popcount((1 << 40) - 1) == 40

    def test_is_subset(self):
        assert sb.is_subset(0, 0)
        assert sb.is_subset(0, 0b111)
        assert sb.is_subset(0b101, 0b111)
        assert not sb.is_subset(0b101, 0b011)
        assert sb.is_subset(0b11, 0b11)

    def test_is_proper_subset(self):
        assert sb.is_proper_subset(0b01, 0b11)
        assert not sb.is_proper_subset(0b11, 0b11)
        assert not sb.is_proper_subset(0b100, 0b011)

    def test_intersects(self):
        assert sb.intersects(0b110, 0b011)
        assert not sb.intersects(0b100, 0b011)
        assert not sb.intersects(0, 0b111)

    def test_mobius_sign(self):
        assert sb.mobius_sign(0) == 1
        assert sb.mobius_sign(0b1) == -1
        assert sb.mobius_sign(0b11) == 1
        assert sb.mobius_sign(0b111) == -1


class TestIteration:
    def test_iter_bits(self):
        assert list(sb.iter_bits(0)) == []
        assert list(sb.iter_bits(0b10110)) == [1, 2, 4]

    def test_iter_singletons(self):
        assert list(sb.iter_singletons(0)) == []
        assert list(sb.iter_singletons(0b10110)) == [0b10, 0b100, 0b10000]

    def test_iter_subsets_complete(self):
        subs = set(sb.iter_subsets(0b101))
        assert subs == {0b000, 0b001, 0b100, 0b101}

    def test_iter_subsets_of_empty(self):
        assert list(sb.iter_subsets(0)) == [0]

    def test_iter_subsets_count(self):
        mask = 0b110110
        assert sum(1 for _ in sb.iter_subsets(mask)) == 2 ** sb.popcount(mask)

    def test_iter_proper_subsets(self):
        subs = set(sb.iter_proper_subsets(0b11))
        assert subs == {0b00, 0b01, 0b10}
        assert list(sb.iter_proper_subsets(0)) == []

    def test_iter_supersets(self):
        sups = set(sb.iter_supersets(0b001, 0b111))
        assert sups == {0b001, 0b011, 0b101, 0b111}

    def test_iter_supersets_outside_universe(self):
        assert list(sb.iter_supersets(0b1000, 0b111)) == []

    def test_iter_interval(self):
        assert set(sb.iter_interval(0b01, 0b11)) == {0b01, 0b11}
        assert set(sb.iter_interval(0b01, 0b01)) == {0b01}

    def test_iter_interval_empty_when_not_contained(self):
        assert list(sb.iter_interval(0b10, 0b01)) == []


class TestBitHelpers:
    def test_lowest_bit(self):
        assert sb.lowest_bit(0b10100) == 0b100

    def test_lowest_bit_of_empty_raises(self):
        with pytest.raises(ValueError):
            sb.lowest_bit(0)

    def test_without_lowest_bit(self):
        assert sb.without_lowest_bit(0b10100) == 0b10000
        with pytest.raises(ValueError):
            sb.without_lowest_bit(0)

    def test_mask_of_bits(self):
        assert sb.mask_of_bits([]) == 0
        assert sb.mask_of_bits([0, 2, 5]) == 0b100101
        assert sb.mask_of_bits([2, 2]) == 0b100
