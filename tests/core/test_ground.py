"""Unit tests for the ground-set codec."""

import pytest

from repro.core import GroundSet
from repro.errors import GroundSetMismatchError, UnknownElementError


class TestConstruction:
    def test_basic(self):
        s = GroundSet("ABCD")
        assert len(s) == 4
        assert s.size == 4
        assert s.elements == ("A", "B", "C", "D")
        assert s.universe_mask == 0b1111

    def test_arbitrary_labels(self):
        s = GroundSet(["beer", "diapers", "chips"])
        assert s.mask(["beer", "chips"]) == 0b101
        assert s.subset(0b101) == frozenset({"beer", "chips"})

    def test_duplicate_elements_rejected(self):
        with pytest.raises(ValueError):
            GroundSet("ABA")

    def test_empty_ground_set(self):
        s = GroundSet([])
        assert s.size == 0
        assert s.universe_mask == 0
        assert list(s.all_masks()) == [0]

    def test_equality_and_hash(self):
        assert GroundSet("AB") == GroundSet("AB")
        assert GroundSet("AB") != GroundSet("BA")  # order matters
        assert hash(GroundSet("AB")) == hash(GroundSet("AB"))


class TestCodec:
    def test_mask_and_subset_roundtrip(self):
        s = GroundSet("ABCD")
        for mask in s.all_masks():
            assert s.mask(s.subset(mask)) == mask

    def test_parse_shorthand(self):
        s = GroundSet("ABCD")
        assert s.parse("ACD") == 0b1101
        assert s.parse("") == 0
        assert s.parse("(/)".replace("(/)", "")) == 0
        assert s.parse(["A", "C"]) == 0b101

    def test_parse_rejects_unknown(self):
        s = GroundSet("ABCD")
        with pytest.raises(UnknownElementError):
            s.parse("AXB")

    def test_parse_rejects_raw_int(self):
        with pytest.raises(TypeError):
            GroundSet("AB").parse(3)

    def test_singleton_mask_and_bit(self):
        s = GroundSet("ABCD")
        assert s.singleton_mask("C") == 0b100
        assert s.bit_of("D") == 3
        with pytest.raises(UnknownElementError):
            s.bit_of("Z")

    def test_complement(self):
        s = GroundSet("ABCD")
        assert s.complement(0b0101) == 0b1010
        assert s.complement(0) == 0b1111

    def test_format_mask(self):
        s = GroundSet("ABCD")
        assert s.format_mask(0b0101) == "AC"
        assert s.format_mask(0) == "(/)"

    def test_format_family(self):
        s = GroundSet("ABCD")
        assert s.format_family([0b10, 0b1100]) == "{B, CD}"

    def test_mask_bounds_checked(self):
        s = GroundSet("AB")
        with pytest.raises(UnknownElementError):
            s.subset(0b100)
        with pytest.raises(UnknownElementError):
            s.format_mask(-1)


class TestEnumeration:
    def test_all_masks(self):
        s = GroundSet("ABC")
        assert list(s.all_masks()) == list(range(8))

    def test_iter_supersets(self):
        s = GroundSet("ABC")
        assert set(s.iter_supersets(0b001)) == {0b001, 0b011, 0b101, 0b111}

    def test_singletons(self):
        s = GroundSet("ABC")
        assert list(s.singletons()) == [0b001, 0b010, 0b100]


class TestGuards:
    def test_check_same(self):
        a, b = GroundSet("AB"), GroundSet("ABC")
        a.check_same(GroundSet("AB"))
        with pytest.raises(GroundSetMismatchError):
            a.check_same(b)

    def test_dense_capability(self):
        assert GroundSet("ABCD").is_dense_capable()
        assert not GroundSet(range(30)).is_dense_capable()

    def test_contains_and_iter(self):
        s = GroundSet("ABC")
        assert "B" in s
        assert "Z" not in s
        assert list(s) == ["A", "B", "C"]
