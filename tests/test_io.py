"""Tests for JSON serialization."""

import json

import pytest

from repro import io
from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    check_proof,
    derive,
)
from repro.errors import InvalidProofError
from repro.instances import random_constraint_set, random_implied_pair


class TestConstraintRoundTrips:
    def test_constraint_set_round_trip(self, ground_abcd, rng):
        for _ in range(15):
            cset = random_constraint_set(rng, ground_abcd, 3, max_members=3)
            text = io.dumps(cset)
            back = io.loads(text)
            assert back == cset

    def test_subsets_stored_as_labels(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B, CD".replace("D", "C"))
        data = json.loads(io.dumps(cset))
        assert data["constraints"][0]["lhs"] == ["A"]
        assert ["B"] in data["constraints"][0]["family"]

    def test_arbitrary_labels(self):
        from repro.core import SetFamily

        ground = GroundSet(["beer", "chips", "salsa"])
        c = DifferentialConstraint(
            ground,
            ground.mask(["beer"]),
            SetFamily(ground, [ground.mask(["chips", "salsa"])]),
        )
        cset = ConstraintSet(ground, [c])
        assert io.loads(io.dumps(cset)) == cset

    def test_format_tag_checked(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B")
        data = json.loads(io.dumps(cset))
        data["format"] = "something-else"
        with pytest.raises(ValueError):
            io.constraint_set_from_json(data)


class TestProofRoundTrips:
    def test_proof_round_trip_checked(self, ground_abcd, rng):
        for _ in range(10):
            cset, target = random_implied_pair(rng, ground_abcd, max_members=2)
            proof = derive(cset, target, check=False)
            text = io.dumps(proof)
            back = io.loads(text)
            assert back.conclusion == proof.conclusion
            assert back.size() == proof.size()
            check_proof(back, cset.constraints)

    def test_primitive_proof_round_trip(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        target = DifferentialConstraint.parse(ground_abc, "A -> C")
        proof = derive(cset, target, allow_derived=False)
        back = io.loads(io.dumps(proof))
        assert back.uses_only_primitives()
        check_proof(back, cset.constraints, allow_derived=False)

    def test_tampered_proof_rejected(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        target = DifferentialConstraint.parse(ground_abc, "A -> C")
        proof = derive(cset, target)
        data = json.loads(io.dumps(proof))
        # corrupt the final conclusion: claim C -> A was derived
        data["steps"][-1]["conclusion"]["lhs"] = ["C"]
        data["steps"][-1]["conclusion"]["family"] = [["A"]]
        with pytest.raises(InvalidProofError):
            io.proof_from_json(data)

    def test_forward_reference_rejected(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        proof = derive(
            cset, DifferentialConstraint.parse(ground_abc, "A -> C")
        )
        data = json.loads(io.dumps(proof))
        data["steps"][0]["premises"] = [5]
        data["steps"][0]["rule"] = "addition"
        with pytest.raises(InvalidProofError):
            io.proof_from_json(data)

    def test_unknown_rule_rejected(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B")
        proof = derive(cset, DifferentialConstraint.parse(ground_abc, "A -> B"))
        data = json.loads(io.dumps(proof))
        data["steps"][0]["rule"] = "hocus-pocus"
        with pytest.raises(InvalidProofError):
            io.proof_from_json(data)


class TestDispatch:
    def test_loads_dispatches(self, ground_abc):
        cset = ConstraintSet.of(ground_abc, "A -> B")
        assert isinstance(io.loads(io.dumps(cset)), ConstraintSet)
        proof = derive(cset, DifferentialConstraint.parse(ground_abc, "A -> B"))
        from repro.core import Proof

        assert isinstance(io.loads(io.dumps(proof)), Proof)

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            io.dumps(42)

    def test_unrecognized_document(self):
        with pytest.raises(ValueError):
            io.loads('{"hello": 1}')
