"""Golden tests: every worked example in the paper, end to end (E3).

Each test cites the paper location it reproduces and asserts the exact
values/sets printed there.
"""

import pytest

from repro.core import (
    ConstraintSet,
    DifferentialConstraint,
    GroundSet,
    SetFamily,
    SetFunction,
    atoms,
    decomp,
    derive,
    differential_value,
    check_proof,
    lattice,
    witnesses,
)
from repro.instances import random_set_function
from repro.logic import negminset_of_constraint


class TestExample22And24:
    """Differentials and densities over S = {A, B, C, D}."""

    def test_differential_expansion(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        fam = SetFamily.of(ground_abcd, "B", "CD")
        got = differential_value(f, fam, ground_abcd.parse("A"))
        want = f("A") - f("AB") - f("ACD") + f("ABCD")
        assert got == pytest.approx(want)

    def test_density_at_a(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        d = f.density()
        want = (
            f("A") - f("AB") - f("AC") - f("AD")
            + f("ABC") + f("ABD") + f("ACD") - f("ABCD")
        )
        assert d("A") == pytest.approx(want)

    def test_density_at_ac_and_ad(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        d = f.density()
        assert d("AC") == pytest.approx(
            f("AC") - f("ABC") - f("ACD") + f("ABCD")
        )
        assert d("AD") == pytest.approx(
            f("AD") - f("ABD") - f("ACD") + f("ABCD")
        )

    def test_function_from_density_sums(self, ground_abcd, rng):
        """Example 2.4's f(A) = sum of densities above A."""
        f = random_set_function(rng, ground_abcd)
        d = f.density()
        got = sum(
            d.value(u)
            for u in ground_abcd.iter_supersets(ground_abcd.parse("A"))
        )
        assert f("A") == pytest.approx(got)

    def test_density_as_differential_at_reduced_families(self, ground_abcd, rng):
        """Example 2.2's d_f(AC) = D^{B,D}_f(AC) and d_f(AD) = D^{B,C}_f(AD)."""
        f = random_set_function(rng, ground_abcd)
        d = f.density()
        fam_bd = SetFamily.of(ground_abcd, "B", "D")
        fam_bc = SetFamily.of(ground_abcd, "B", "C")
        assert differential_value(f, fam_bd, ground_abcd.parse("AC")) == pytest.approx(d("AC"))
        assert differential_value(f, fam_bc, ground_abcd.parse("AD")) == pytest.approx(d("AD"))


class TestExample27:
    def test_witnesses_and_lattice(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "B", "CD")
        assert set(witnesses(fam)) == {
            ground_abcd.parse(w) for w in ("BC", "BD", "BCD")
        }
        assert set(lattice(ground_abcd.parse("A"), fam, ground_abcd)) == {
            ground_abcd.parse(u) for u in ("A", "AC", "AD")
        }

    def test_overlap_example(self, ground_abcd):
        fam = SetFamily.of(ground_abcd, "BC", "BD")
        assert set(witnesses(fam)) == {
            ground_abcd.parse(w) for w in ("B", "BC", "BD", "CD", "BCD")
        }
        assert set(lattice(ground_abcd.parse("A"), fam, ground_abcd)) == {
            ground_abcd.parse(u) for u in ("A", "AB", "AC", "AD", "ACD")
        }


class TestExample210:
    def test_density_sum(self, ground_abcd, rng):
        f = random_set_function(rng, ground_abcd)
        d = f.density()
        fam = SetFamily.of(ground_abcd, "B", "CD")
        got = differential_value(f, fam, ground_abcd.parse("A"))
        assert got == pytest.approx(d("A") + d("AC") + d("AD"))


class TestExample32And34:
    def test_function_and_density(self, ground_abc, example_32_function):
        f = example_32_function
        d = f.density()
        assert d("C") == 1
        assert d("ABC") == 1
        assert sum(abs(d.value(m)) for m in ground_abc.all_masks()) == 2

    def test_satisfactions(self, ground_abc, example_32_function):
        f = example_32_function
        assert DifferentialConstraint.parse(ground_abc, "A -> B").satisfied_by(f)
        assert DifferentialConstraint.parse(ground_abc, "B -> C").satisfied_by(f)
        assert not DifferentialConstraint.parse(ground_abc, "C -> A").satisfied_by(f)

    def test_implication(self, ground_abc):
        cs = ConstraintSet.of(ground_abc, "A -> B", "B -> C")
        assert cs.implies("A -> C")


class TestRemark36:
    def test_one_element_counterexample(self, ground_a):
        f = SetFunction.from_dict(ground_a, {"": 0, "A": 1}, exact=True)
        d = f.density()
        assert d("") == -1 and d("A") == 1
        c = DifferentialConstraint(ground_a, 0, SetFamily(ground_a))
        assert differential_value(f, c.family, 0) == 0
        assert not c.satisfied_by(f)
        assert c.satisfied_by(f, semantics="differential")


class TestExample43:
    def test_machine_derivation(self, ground_abcd):
        cs = ConstraintSet.of(ground_abcd, "A -> BC, CD", "C -> D")
        t = DifferentialConstraint.parse(ground_abcd, "AB -> D")
        proof = derive(cs, t, allow_derived=False)
        assert proof.conclusion == t
        check_proof(proof, cs.constraints, allow_derived=False)

    def test_manual_derivation_matches_paper(self, ground_abcd):
        """Replays the paper's six-step derivation literally."""
        from repro.core.proofs import augmentation, axiom, projection, transitivity

        s = ground_abcd
        given_b = axiom(DifferentialConstraint.parse(s, "A -> BC, CD"))
        given_a = axiom(DifferentialConstraint.parse(s, "C -> D"))
        step_c = projection(given_b, s.parse("CD"), s.parse("C"))
        assert step_c.conclusion == DifferentialConstraint.parse(s, "A -> BC, C")
        step_d = projection(step_c, s.parse("BC"), s.parse("C"))
        assert step_d.conclusion == DifferentialConstraint.parse(s, "A -> C")
        step_e = augmentation(step_d, s.parse("B"))
        assert step_e.conclusion == DifferentialConstraint.parse(s, "AB -> C")
        final = transitivity(
            step_e, given_a, s.parse("C"), s.parse("D"), SetFamily(s)
        )
        assert final.conclusion == DifferentialConstraint.parse(s, "AB -> D")
        check_proof(
            final,
            [
                DifferentialConstraint.parse(s, "A -> BC, CD"),
                DifferentialConstraint.parse(s, "C -> D"),
            ],
        )


class TestSection42Decompositions:
    def test_decomp_golden(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        assert set(decomp(c)) == {
            DifferentialConstraint.parse(ground_abcd, "A -> B, C"),
            DifferentialConstraint.parse(ground_abcd, "A -> B, D"),
            DifferentialConstraint.parse(ground_abcd, "A -> B, C, D"),
        }

    def test_atoms_golden(self, ground_abcd):
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        assert set(atoms(c)) == {
            DifferentialConstraint.parse(ground_abcd, "A -> B, C, D"),
            DifferentialConstraint.parse(ground_abcd, "AC -> B, D"),
            DifferentialConstraint.parse(ground_abcd, "AD -> B, C"),
        }


class TestSection5Example:
    def test_negminset_golden(self, ground_abcd):
        """negminset(A => B or (C and D)) = {A, AC, AD}."""
        c = DifferentialConstraint.parse(ground_abcd, "A -> B, CD")
        assert negminset_of_constraint(c) == {
            ground_abcd.parse(u) for u in ("A", "AC", "AD")
        }


class TestSection6Example:
    def test_transitivity_on_disjunctive_sets(self, ground_abcd):
        """A -> {B,D} and B -> {C,D} make {A,C,D} derivably disjunctive."""
        from repro.fis import DisjunctiveConstraint, is_derivably_disjunctive

        rules = [
            DisjunctiveConstraint.of(ground_abcd, "A", "B", "D"),
            DisjunctiveConstraint.of(ground_abcd, "B", "C", "D"),
        ]
        assert is_derivably_disjunctive(
            rules, ground_abcd.parse("ACD"), ground_abcd
        )
        # and the inference system derives the transitive rule itself
        cs = ConstraintSet.of(ground_abcd, "A -> B, D", "B -> C, D")
        t = DifferentialConstraint.parse(ground_abcd, "A -> C, D")
        proof = derive(cs, t, allow_derived=False)
        check_proof(proof, cs.constraints, allow_derived=False)
