"""Legacy setuptools entry point.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then uses the legacy develop path instead of a
PEP 517 build).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
