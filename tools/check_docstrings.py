#!/usr/bin/env python
"""Docstring coverage gate for the engine's public surface.

A pydocstyle-lite: walks every module under ``src/repro/engine`` (plus
any extra paths given on the command line) with :mod:`ast` -- no
imports, so it runs anywhere -- and counts docstrings on the *public*
surface:

* the module itself;
* module-level classes and functions not prefixed with ``_``;
* public methods of public classes (dunders other than ``__init__``
  are skipped: their contracts are Python's, not ours).

``__init__`` counts as covered when either it or its class carries a
docstring (the common idiom documents the constructor in the class
docstring).  An override whose method is documented on a base class
*in the same module* inherits that docstring (the interface documents
the contract once; ``help()`` surfaces it for every implementation).

Exit status 1 when coverage falls below the threshold (default 90%),
listing every undocumented name so the fix is mechanical.

Usage:
    python tools/check_docstrings.py                # gate src/repro/engine
    python tools/check_docstrings.py --list         # show missing names
    python tools/check_docstrings.py --threshold 95 src/repro
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = (os.path.join("src", "repro", "engine"),)
DEFAULT_THRESHOLD = 90.0


def _public(name: str) -> bool:
    return not name.startswith("_")


def _iter_py(path: str) -> Iterator[str]:
    if os.path.isfile(path):
        yield path
        return
    for dirpath, _dirnames, filenames in os.walk(path):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _inherited(classes: dict, bases: List[str], method: str) -> bool:
    """True when ``method`` is documented on a same-module ancestor."""
    seen = set()
    queue = list(bases)
    while queue:
        base = queue.pop()
        if base in seen or base not in classes:
            continue
        seen.add(base)
        documented, parents = classes[base]
        if documented.get(method):
            return True
        queue.extend(parents)
    return False


def _surface(tree: ast.Module, module: str) -> List[Tuple[str, bool]]:
    """``(qualified name, has docstring)`` for the module's public API."""
    out = [(module, ast.get_docstring(tree) is not None)]
    # class name -> ({method: has docstring}, base names), for the
    # inherited-docstring rule
    classes: dict = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            classes[node.name] = (
                {
                    item.name: ast.get_docstring(item) is not None
                    for item in node.body
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                },
                _base_names(node),
            )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _public(node.name):
                out.append(
                    (f"{module}.{node.name}",
                     ast.get_docstring(node) is not None)
                )
        elif isinstance(node, ast.ClassDef) and _public(node.name):
            class_doc = ast.get_docstring(node) is not None
            out.append((f"{module}.{node.name}", class_doc))
            bases = _base_names(node)
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                name = item.name
                if name == "__init__":
                    documented = (
                        class_doc or ast.get_docstring(item) is not None
                    )
                elif _public(name):
                    documented = (
                        ast.get_docstring(item) is not None
                        or _inherited(classes, bases, name)
                    )
                else:
                    continue
                out.append((f"{module}.{node.name}.{name}", documented))
    return out


def _module_name(path: str) -> str:
    rel = os.path.relpath(path, ROOT)
    for prefix in ("src" + os.sep,):
        if rel.startswith(prefix):
            rel = rel[len(prefix):]
    rel = rel[:-3] if rel.endswith(".py") else rel
    parts = rel.split(os.sep)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def audit(paths) -> Tuple[List[Tuple[str, bool]], List[str]]:
    surface: List[Tuple[str, bool]] = []
    errors: List[str] = []
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(ROOT, path)
        if not os.path.exists(full):
            errors.append(f"no such path: {path}")
            continue
        for py in _iter_py(full):
            with open(py, "rb") as fh:
                try:
                    tree = ast.parse(fh.read(), filename=py)
                except SyntaxError as err:
                    errors.append(f"{py}: {err}")
                    continue
            surface.extend(_surface(tree, _module_name(py)))
    return surface, errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="docstring coverage gate for the public surface"
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to audit (default: src/repro/engine)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="minimum coverage percent (default: %(default)s)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list every undocumented public name",
    )
    args = parser.parse_args(argv)

    surface, errors = audit(args.paths)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        return 1
    if not surface:
        print("error: empty public surface", file=sys.stderr)
        return 1

    missing = [name for name, documented in surface if not documented]
    coverage = 100.0 * (len(surface) - len(missing)) / len(surface)
    if args.list or coverage < args.threshold:
        for name in missing:
            print(f"undocumented: {name}")
    print(
        f"docstring coverage: {coverage:.1f}% "
        f"({len(surface) - len(missing)}/{len(surface)} public names, "
        f"threshold {args.threshold:g}%)"
    )
    if coverage < args.threshold:
        print(
            f"FAIL: coverage below {args.threshold:g}% -- document the "
            "names listed above",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
